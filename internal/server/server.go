// Package server exposes the experiment harness over HTTP: clients
// enqueue batches of simulation configs, poll for results by content
// key, and render any of the paper's tables/figures on demand, in text,
// JSON, or CSV.
//
// v1 API (all JSON unless noted; wire types and the error envelope are
// defined once, in internal/client):
//
//	GET  /v1/version              API version, store format, max cores, auth mode
//	POST /v1/sims                 {"configs":[sim.Config...]} -> 202 {"sims":[{key,status,...}]}
//	GET  /v1/sims/{key}           poll one simulation; result embedded when done
//	POST /v1/scenarios            {"scenarios":[sim.Scenario...]} -> 202 {"scenarios":[{key,status,...}]}
//	GET  /v1/scenarios/{key}      poll one scenario; per-core results embedded when done
//	POST /v1/sweeps               body: a spec document (internal/spec); expand, run, render
//	                              (?format=json|csv|text, ?tables=id,... to select tables;
//	                              Accept: text/event-stream streams per-scenario progress over SSE)
//	GET  /v1/experiments          list experiment ids
//	GET  /v1/experiments/{name}   render a table/figure (?format=json|csv|text)
//	GET  /v1/store/stats          persistent-store traffic counters
//	GET  /metrics                 Prometheus text exposition (no key required)
//	GET  /healthz                 liveness (plain "ok"; no key required)
//
// /v1/sims is a documented thin alias of /v1/scenarios: each config is
// wrapped as an N=1 scenario and both endpoints run through one submit
// path, one job table, one key space and one store. Every non-2xx
// response is the versioned JSON error envelope
// {"error":{"code","message","retryable"}}.
//
// Multi-tenancy: with a TenantRegistry configured, every request (bar
// /healthz, /v1/version, /metrics) must carry "Authorization: Bearer
// <api-key>". Submissions are scheduled by a fair-share weighted
// round-robin across tenants (internal/dispatch.FairQueue), bounded by
// per-tenant quotas (429 + Retry-After) and a global queue bound that
// sheds load (503 + Retry-After) — so one tenant's 4096-scenario sweep
// cannot starve another tenant's single sim. A tenant with max_rps set
// is additionally rate-limited per request (token bucket; 429 +
// Retry-After with code rate_limited) before its handler runs. Simulations are executed
// asynchronously by a pluggable internal/dispatch executor — a fixed
// local worker pool by default, or a dispatch.Coordinator leasing jobs
// to remote workers — and duplicate keys (within a batch, across
// batches, across tenants, or across restarts via the persistent
// store) never simulate twice.
package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"sync"
	"time"

	"shotgun/internal/client"
	"shotgun/internal/dispatch"
	"shotgun/internal/harness"
	"shotgun/internal/report"
	"shotgun/internal/sim"
	"shotgun/internal/store"
)

// Job states, in lifecycle order (defined in internal/client; aliased
// so existing callers keep reading naturally).
const (
	StatusQueued  = client.StatusQueued
	StatusRunning = client.StatusRunning
	StatusDone    = client.StatusDone
	StatusFailed  = client.StatusFailed
)

// SimStatus and ScenarioStatus are the v1 wire shapes, defined in
// internal/client.
type (
	SimStatus      = client.SimStatus
	ScenarioStatus = client.ScenarioStatus
)

// Retry-After hints: a quota trip clears as soon as the tenant's own
// work drains (fast), a global shed needs overall load to fall
// (slower).
const (
	quotaRetryAfter = 2 * time.Second
	shedRetryAfter  = 10 * time.Second
)

// Config parameterizes a Server.
type Config struct {
	// Scale is the simulation scale every submitted config is pinned to
	// (the content key is derived from the pinned form, so a quick-scale
	// and a full-scale server address disjoint result spaces).
	Scale harness.Scale
	// ScaleName labels reports ("quick", "full").
	ScaleName string
	// Workers sizes the simulation pool (values below 1 mean 1).
	Workers int
	// Store, when non-nil, persists results across restarts and is
	// consulted before simulating. Any store.Backend works: the local
	// on-disk store, or the sharded replicated one (-store-shards).
	Store store.Backend
	// QueueDepth bounds the inner executor's backlog (default 4096).
	QueueDepth int
	// MaxQueue bounds jobs waiting in the fair-share queue across all
	// tenants; past it submissions shed with 503 + Retry-After. 0
	// means unlimited.
	MaxQueue int
	// FairSlots bounds how many jobs the fair queue keeps resident in
	// the executor at once (default 2×Workers, clamped to QueueDepth).
	// Cluster mode wants this larger — it bounds lease-table
	// occupancy, not local compute.
	FairSlots int
	// MaxBatch bounds configs/scenarios per submission (default 1024);
	// oversized batches are rejected with 400 before any validation.
	MaxBatch int
	// Tenants, when non-nil, enables API-key auth and per-tenant
	// fair-share policies. Nil serves everything as one anonymous
	// tenant with no auth.
	Tenants *TenantRegistry
	// Logger receives structured request/lifecycle logs (default:
	// discard).
	Logger *slog.Logger
	// NewExecutor, when non-nil, builds the execution backend from the
	// server's runner and its job-table sink (cluster mode passes a
	// dispatch.Coordinator constructor here). Nil builds the local
	// worker pool — the classic single-node path. Either way the
	// backend runs behind the fair-share queue.
	NewExecutor func(r *harness.Runner, sink dispatch.Sink) dispatch.Executor
	// ClusterStats, when non-nil, feeds coordinator lease counters
	// into /metrics (cluster mode only).
	ClusterStats func() dispatch.CoordinatorStats
}

// job tracks one submitted scenario through the pool.
type job struct {
	key string
	sc  sim.Scenario // pinned to the server scale

	// done closes when the job reaches a terminal state (done or
	// failed); synchronous waiters (the sweep handler) select on it.
	done chan struct{}

	mu     sync.Mutex
	status string
	result sim.ScenarioResult
	err    string
}

// newJob builds a queued job for a pinned scenario.
func newJob(key string, sc sim.Scenario) *job {
	return &job{key: key, sc: sc, status: StatusQueued, done: make(chan struct{})}
}

// finish moves the job to a terminal state exactly once; redundant
// completions (a stale cluster worker pushing after a requeue) leave
// the first outcome in place.
func (j *job) finish(status string, res sim.ScenarioResult, msg string) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.status == StatusDone || j.status == StatusFailed {
		return
	}
	j.status = status
	j.result = res
	j.err = msg
	close(j.done)
}

// snapshot is the single-core (/v1/sims) view of a job: core 0's
// workload, mechanism and result.
func (j *job) snapshot() SimStatus {
	j.mu.Lock()
	defer j.mu.Unlock()
	st := SimStatus{
		Key:       j.key,
		Status:    j.status,
		Workload:  j.sc.Cores[0].Workload,
		Mechanism: string(j.sc.Cores[0].Mechanism),
		Error:     j.err,
	}
	if j.status == StatusDone {
		res := j.result.Cores[0]
		st.Result = &res
	}
	return st
}

// scenarioStatusOf projects a scenario into its wire status — the one
// place the per-core Workloads/Mechanisms lists are assembled, so live
// jobs and store-served records always render the same shape.
func scenarioStatusOf(key, status string, sc sim.Scenario) ScenarioStatus {
	st := ScenarioStatus{
		Key:    key,
		Status: status,
		Cores:  len(sc.Cores),
	}
	for _, cfg := range sc.Cores {
		st.Workloads = append(st.Workloads, cfg.Workload)
		st.Mechanisms = append(st.Mechanisms, string(cfg.Mechanism))
	}
	return st
}

// scenarioSnapshot is the full (/v1/scenarios) view of a job.
func (j *job) scenarioSnapshot() ScenarioStatus {
	j.mu.Lock()
	defer j.mu.Unlock()
	st := scenarioStatusOf(j.key, j.status, j.sc)
	st.Error = j.err
	if j.status == StatusDone {
		res := j.result
		st.Result = &res
	}
	return st
}

// Server is the HTTP simulation service.
type Server struct {
	runner       *harness.Runner
	st           store.Backend
	scale        harness.Scale
	scaleName    string
	maxBatch     int
	fair         *dispatch.FairQueue
	reg          *TenantRegistry
	limits       *rateLimiters
	log          *slog.Logger
	clusterStats func() dispatch.CoordinatorStats
	httpStats    httpMetrics

	mu   sync.Mutex
	jobs map[string]*job
	// closed rejects new submissions (RejectNew/Close/Shutdown) before
	// they reach the executor, so a late handler gets an honest 503.
	closed bool
	// abandonCh closes when Shutdown ABANDONS queued jobs (which never
	// close their done channels), waking synchronous waiters (the sweep
	// handler) to answer 503. It deliberately does NOT close on
	// RejectNew or Close: during a graceful drain in-flight sweeps keep
	// waiting — their jobs are still allowed to finish, and a sweep
	// whose last job completes inside the drain window delivers its
	// rendered result instead of a premature 503.
	abandoned bool
	abandonCh chan struct{}
}

// New builds a server and starts its execution backend behind the
// fair-share queue. Call Close to drain.
func New(cfg Config) *Server {
	workers := cfg.Workers
	if workers < 1 {
		workers = 1
	}
	depth := cfg.QueueDepth
	if depth <= 0 {
		depth = 4096
	}
	maxBatch := cfg.MaxBatch
	if maxBatch <= 0 {
		maxBatch = 1024
	}
	slots := cfg.FairSlots
	if slots <= 0 {
		slots = 2 * workers
	}
	if slots > depth {
		// Slots above the inner backlog would make the dispatcher trip
		// ErrQueueFull and fail jobs spuriously.
		slots = depth
	}
	logger := cfg.Logger
	if logger == nil {
		logger = slog.New(slog.DiscardHandler)
	}
	runner := harness.NewRunnerWorkers(cfg.Scale, workers)
	if !store.Real(cfg.Store) {
		cfg.Store = nil // typed-nil normalization; see store.Real
	}
	if cfg.Store != nil {
		runner.SetStore(cfg.Store)
	}
	s := &Server{
		runner:       runner,
		st:           cfg.Store,
		scale:        cfg.Scale,
		scaleName:    cfg.ScaleName,
		maxBatch:     maxBatch,
		reg:          cfg.Tenants,
		limits:       newRateLimiters(cfg.Tenants),
		log:          logger,
		clusterStats: cfg.ClusterStats,
		jobs:         make(map[string]*job),
		abandonCh:    make(chan struct{}),
	}
	newInner := func(sink dispatch.Sink) dispatch.Executor {
		if cfg.NewExecutor != nil {
			return cfg.NewExecutor(runner, sink)
		}
		return dispatch.NewLocalPool(runner, sink, depth)
	}
	s.fair = dispatch.NewFairQueue(dispatch.FairConfig{
		Slots:    slots,
		MaxQueue: cfg.MaxQueue,
		Tenants:  cfg.Tenants.Policies(),
	}, s, newInner)
	return s
}

// jobByKey looks a job up without touching its state.
func (s *Server) jobByKey(key string) *job {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.jobs[key]
}

// The dispatch.Sink implementation: executors report job lifecycle
// transitions here (through the fair queue, which forwards after its
// own slot accounting). Unknown keys are ignored — the executor
// outliving a job table entry is not possible today (jobs are never
// evicted), but a sink must not panic on protocol slack.

// JobRunning implements dispatch.Sink.
func (s *Server) JobRunning(key string) {
	if j := s.jobByKey(key); j != nil {
		j.mu.Lock()
		if j.status == StatusQueued {
			j.status = StatusRunning
		}
		j.mu.Unlock()
	}
}

// JobRequeued implements dispatch.Sink (a lease expired; the job went
// back to the cluster queue).
func (s *Server) JobRequeued(key string) {
	if j := s.jobByKey(key); j != nil {
		j.mu.Lock()
		if j.status == StatusRunning {
			j.status = StatusQueued
		}
		j.mu.Unlock()
	}
}

// JobDone implements dispatch.Sink.
func (s *Server) JobDone(key string, res sim.ScenarioResult) {
	if j := s.jobByKey(key); j != nil {
		j.finish(StatusDone, res, "")
	}
}

// JobFailed implements dispatch.Sink.
func (s *Server) JobFailed(key string, msg string) {
	if j := s.jobByKey(key); j != nil {
		s.log.Warn("job failed", slog.String("key", key), slog.String("error", msg))
		j.finish(StatusFailed, sim.ScenarioResult{}, msg)
	}
}

// Close stops accepting new work and DRAINS the queue: every accepted
// simulation runs to completion before Close returns. Use it when the
// queued work must not be lost (tests, batch jobs with no store).
func (s *Server) Close() { s.stop(false) }

// Shutdown stops accepting new work and ABANDONS the queue: workers
// finish at most their in-flight simulation and exit, leaving queued
// jobs unrun. This is the signal-handler path — a full-scale queue can
// hold hours of simulation, and clients can resubmit after a restart
// (a store makes completed work free). Jobs left behind keep their
// "queued" status; the process is exiting anyway.
func (s *Server) Shutdown() { s.stop(true) }

// RejectNew makes every subsequent submission fail with an honest
// "shutting down" 503 while workers keep running. Call it BEFORE
// draining in-flight HTTP requests: otherwise a handler that is mid-
// flight when shutdown starts can enqueue a batch, answer 202 with
// keys, and have Shutdown abandon that work — leaving the client
// polling keys that will 404 on the restarted server.
func (s *Server) RejectNew() {
	s.mu.Lock()
	s.closed = true
	s.mu.Unlock()
}

// stop implements Close/Shutdown: reject new submissions, then stop
// the executor. Only the abandoning path wakes sweep waiters — a
// draining Close runs every queued job to completion, so waiters
// finish naturally through their done channels.
func (s *Server) stop(abandon bool) {
	s.mu.Lock()
	s.closed = true
	if abandon && !s.abandoned {
		s.abandoned = true
		close(s.abandonCh)
	}
	s.mu.Unlock()
	s.fair.Stop(abandon)
}

// Handler returns the server's HTTP routes, wrapped in the logging
// and (when a registry is configured) auth and per-tenant rate-limit
// middleware. Rate limiting sits inside auth so buckets are keyed by
// the authenticated tenant, never by a claimed name.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/sims", s.handleSubmit)
	mux.HandleFunc("GET /v1/sims/{key}", s.handlePoll)
	mux.HandleFunc("POST /v1/scenarios", s.handleSubmitScenarios)
	mux.HandleFunc("GET /v1/scenarios/{key}", s.handlePollScenario)
	mux.HandleFunc("POST /v1/sweeps", s.handleSweep)
	mux.HandleFunc("GET /v1/experiments", s.handleExperimentList)
	mux.HandleFunc("GET /v1/experiments/{name}", s.handleExperiment)
	mux.HandleFunc("GET /v1/store/stats", s.handleStoreStats)
	mux.HandleFunc("GET /v1/version", s.handleVersion)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, _ *http.Request) {
		fmt.Fprintln(w, "ok")
	})
	return logMiddleware(s.log, &s.httpStats,
		authMiddleware(s.reg, rateLimitMiddleware(s.limits, mux)))
}

func (s *Server) handleVersion(w http.ResponseWriter, _ *http.Request) {
	client.WriteJSON(w, client.VersionInfo{
		API:                "v1",
		StoreFormatVersion: store.FormatVersion,
		MaxCores:           sim.MaxCores,
		Scale:              s.scaleName,
		AuthRequired:       s.reg != nil,
	})
}

// enqueueScenarios registers and enqueues pre-validated, pinned
// scenarios for one tenant under one job-table lock hold (fair-queue
// Submits never block): a job becomes visible in s.jobs only once the
// fair queue actually holds it (or the store already held its result),
// so no concurrent submitter can ever be handed a key that later
// disappears. A key the persistent store already has is born done
// without touching the executor — the path that lets a restarted
// cluster serve known scenarios without re-leasing anything. On quota
// or shed the already-enqueued prefix stands — it is valid work, and a
// retry dedups onto it — and the error tells the caller what to
// answer; dispatch.ErrClosing means Close has begun and retrying this
// server is pointless. The returned jobs include deduplicated hits on
// existing keys, in batch order.
func (s *Server) enqueueScenarios(tenant string, scs []sim.Scenario) ([]*job, error) {
	keys := make([]string, len(scs))
	for i, sc := range scs {
		keys[i] = store.ScenarioKey(sc)
	}
	return s.enqueueKeyed(tenant, keys, scs)
}

// enqueueKeyed is enqueueScenarios for callers that already computed
// the content keys (the sweep handler hashes during its own dedup
// pass); keys[i] must be store.ScenarioKey(scs[i]).
//
// The store is consulted before taking the job-table lock: hashing and
// a disk read per scenario are the expensive parts, and doing them
// here keeps concurrent submitters (and every Sink callback) from
// serializing behind them. The store peek races benignly with
// concurrent submits of the same key — whoever takes the lock first
// registers the job, and the loser below reuses it.
func (s *Server) enqueueKeyed(tenant string, keys []string, scs []sim.Scenario) ([]*job, error) {
	stored := make(map[string]sim.ScenarioResult)
	if s.st != nil {
		for _, key := range keys {
			if _, seen := stored[key]; seen {
				continue
			}
			if known := s.jobByKey(key); known != nil {
				continue // already tracked; no store read needed
			}
			if rec, found := s.st.GetKey(key); found {
				stored[key] = rec.Result
			}
		}
	}
	jobs := make([]*job, 0, len(scs))
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return jobs, dispatch.ErrClosing
	}
	for i, sc := range scs {
		key := keys[i]
		if existing, found := s.jobs[key]; found {
			jobs = append(jobs, existing)
			continue
		}
		j := newJob(key, sc)
		if res, found := stored[key]; found {
			// Already persisted by a previous life of this service (or
			// another node on the same store): born done, the executor
			// never sees it.
			j.finish(StatusDone, res, "")
			s.jobs[key] = j
			jobs = append(jobs, j)
			continue
		}
		if err := s.fair.Submit(tenant, key, sc); err != nil {
			return jobs, err
		}
		s.jobs[key] = j
		jobs = append(jobs, j)
	}
	return jobs, nil
}

// enqueueError maps an enqueue failure to its envelope: quota trips
// 429, shed and shutdown 503 — all retryable, the first two with a
// Retry-After hint.
func (s *Server) enqueueError(w http.ResponseWriter, err error) {
	switch {
	case errors.Is(err, dispatch.ErrClosing):
		client.WriteError(w, http.StatusServiceUnavailable, client.CodeShuttingDown,
			"server shutting down; submit elsewhere")
	case errors.Is(err, dispatch.ErrQuotaExceeded):
		client.WriteErrorRetryAfter(w, http.StatusTooManyRequests, client.CodeQuotaExceeded, quotaRetryAfter,
			"tenant quota exceeded; retry after earlier work drains")
	case errors.Is(err, dispatch.ErrOverloaded):
		client.WriteErrorRetryAfter(w, http.StatusServiceUnavailable, client.CodeOverloaded, shedRetryAfter,
			"server overloaded, shedding load; retry later")
	default:
		client.WriteErrorRetryAfter(w, http.StatusServiceUnavailable, client.CodeOverloaded, shedRetryAfter,
			"queue full; retry later")
	}
}

// maxBodyBytes bounds submission bodies: a full MaxBatch of scenarios
// fits comfortably, and an unbounded body must never reach the JSON
// decoder (fuzz-hardened: malformed, truncated or oversized bodies all
// answer 4xx, never a panic or a 5xx).
const maxBodyBytes = 8 << 20

// decodeBody decodes a size-capped JSON submission, mapping every
// failure (bad JSON, truncation, over-size) to a 400 envelope.
func decodeBody(w http.ResponseWriter, r *http.Request, v any) bool {
	r.Body = http.MaxBytesReader(w, r.Body, maxBodyBytes)
	if err := json.NewDecoder(r.Body).Decode(v); err != nil {
		client.WriteError(w, http.StatusBadRequest, client.CodeInvalidRequest, "decode body: %v", err)
		return false
	}
	return true
}

// checkBatch enforces the non-empty / max-size envelope every
// submission batch shares.
func (s *Server) checkBatch(w http.ResponseWriter, n int, what string) bool {
	if n == 0 {
		client.WriteError(w, http.StatusBadRequest, client.CodeInvalidRequest,
			"empty batch: body must carry at least one %s", what)
		return false
	}
	if n > s.maxBatch {
		client.WriteError(w, http.StatusBadRequest, client.CodeInvalidRequest,
			"batch of %d %ss exceeds the %d-per-request limit", n, what, s.maxBatch)
		return false
	}
	return true
}

// acceptScenarios is the single submit path both POST /v1/sims and
// POST /v1/scenarios drain into: enqueue pinned scenarios under the
// request's tenant, mapping failures to their envelopes. The /v1/sims
// alias differs only in how it unwraps the request and renders the
// response.
func (s *Server) acceptScenarios(w http.ResponseWriter, r *http.Request, scs []sim.Scenario) ([]*job, bool) {
	jobs, err := s.enqueueScenarios(tenantFrom(r.Context()), scs)
	if err != nil {
		s.enqueueError(w, err)
		return nil, false
	}
	return jobs, true
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var req client.SubmitSimsRequest
	if !decodeBody(w, r, &req) {
		return
	}
	if !s.checkBatch(w, len(req.Configs), "config") {
		return
	}
	// Validate the whole batch before enqueueing any of it, so a batch
	// is accepted atomically or not at all.
	scs := make([]sim.Scenario, 0, len(req.Configs))
	for i, cfg := range req.Configs {
		if err := cfg.Validate(); err != nil {
			client.WriteError(w, http.StatusBadRequest, client.CodeInvalidRequest, "config %d: %v", i, err)
			return
		}
		scs = append(scs, s.runner.NormalizeScenario(sim.SingleCore(cfg)))
	}

	jobs, ok := s.acceptScenarios(w, r, scs)
	if !ok {
		return
	}
	resp := client.SubmitSimsResponse{Sims: make([]SimStatus, 0, len(jobs))}
	for _, j := range jobs {
		resp.Sims = append(resp.Sims, j.snapshot())
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusAccepted)
	writeJSON(w, resp)
}

func (s *Server) handleSubmitScenarios(w http.ResponseWriter, r *http.Request) {
	var req client.SubmitScenariosRequest
	if !decodeBody(w, r, &req) {
		return
	}
	if !s.checkBatch(w, len(req.Scenarios), "scenario") {
		return
	}
	scs := make([]sim.Scenario, 0, len(req.Scenarios))
	for i, sc := range req.Scenarios {
		if err := sc.Validate(); err != nil {
			client.WriteError(w, http.StatusBadRequest, client.CodeInvalidRequest, "scenario %d: %v", i, err)
			return
		}
		scs = append(scs, s.runner.NormalizeScenario(sc))
	}

	jobs, ok := s.acceptScenarios(w, r, scs)
	if !ok {
		return
	}
	resp := client.SubmitScenariosResponse{Scenarios: make([]ScenarioStatus, 0, len(jobs))}
	for _, j := range jobs {
		resp.Scenarios = append(resp.Scenarios, j.scenarioSnapshot())
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusAccepted)
	writeJSON(w, resp)
}

func (s *Server) handlePoll(w http.ResponseWriter, r *http.Request) {
	key := r.PathValue("key")
	s.mu.Lock()
	j, ok := s.jobs[key]
	s.mu.Unlock()
	if ok {
		client.WriteJSON(w, j.snapshot())
		return
	}
	// Not submitted in this process: a previous run may have persisted
	// it — serve straight from the store.
	if s.st != nil {
		if rec, found := s.st.GetKey(key); found {
			res := rec.Result.Cores[0]
			client.WriteJSON(w, SimStatus{
				Key:       key,
				Status:    StatusDone,
				Workload:  rec.Scenario.Cores[0].Workload,
				Mechanism: string(rec.Scenario.Cores[0].Mechanism),
				Result:    &res,
			})
			return
		}
	}
	client.WriteError(w, http.StatusNotFound, client.CodeNotFound, "unknown simulation key %q", key)
}

func (s *Server) handlePollScenario(w http.ResponseWriter, r *http.Request) {
	key := r.PathValue("key")
	s.mu.Lock()
	j, ok := s.jobs[key]
	s.mu.Unlock()
	if ok {
		client.WriteJSON(w, j.scenarioSnapshot())
		return
	}
	if s.st != nil {
		if rec, found := s.st.GetKey(key); found {
			st := scenarioStatusOf(key, StatusDone, rec.Scenario)
			st.Result = &rec.Result
			client.WriteJSON(w, st)
			return
		}
	}
	client.WriteError(w, http.StatusNotFound, client.CodeNotFound, "unknown scenario key %q", key)
}

// experimentInfo is one row of GET /v1/experiments.
type experimentInfo struct {
	ID   string `json:"id"`
	Desc string `json:"desc"`
}

func (s *Server) handleExperimentList(w http.ResponseWriter, _ *http.Request) {
	// Presentation order (the paper's), matching shotgun-bench -list.
	var list []experimentInfo
	for _, e := range harness.Experiments() {
		list = append(list, experimentInfo{ID: e.ID, Desc: e.Desc})
	}
	client.WriteJSON(w, map[string]any{"experiments": list})
}

func (s *Server) handleExperiment(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	exp, ok := harness.Find(name)
	if !ok {
		client.WriteError(w, http.StatusNotFound, client.CodeNotFound,
			"unknown experiment %q (GET /v1/experiments lists ids)", name)
		return
	}
	format := r.URL.Query().Get("format")
	if format == "" {
		format = "json"
	}
	// Render on demand: saturate the pool with the experiment's scenario
	// set (memo + store make repeats cheap), then assemble the table.
	if exp.Scenarios != nil {
		s.runner.PrefetchScenarios(exp.Scenarios())
	}
	table := exp.Table(s.runner)
	switch format {
	case "json":
		client.WriteJSON(w, report.Report{
			Version: report.Version,
			Scale:   s.scaleName,
			Tables:  []report.Table{report.FromStats(exp.ID, table)},
		})
	case "csv":
		w.Header().Set("Content-Type", "text/csv")
		if err := report.FromStats(exp.ID, table).WriteCSV(w); err != nil {
			// Headers are gone; nothing better to do than log-by-status.
			return
		}
	case "text":
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprint(w, table.String())
	default:
		client.WriteError(w, http.StatusBadRequest, client.CodeInvalidRequest,
			"unknown format %q (json, csv, text)", format)
	}
}

// storeStatsResponse is GET /v1/store/stats' body.
type storeStatsResponse struct {
	Attached bool        `json:"attached"`
	Stats    store.Stats `json:"stats,omitempty"`
}

func (s *Server) handleStoreStats(w http.ResponseWriter, _ *http.Request) {
	resp := storeStatsResponse{}
	if s.st != nil {
		resp.Attached = true
		resp.Stats = s.st.Stats()
	}
	client.WriteJSON(w, resp)
}

func writeJSON(w io.Writer, v any) {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}
