package server

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"shotgun/internal/dispatch"
	"shotgun/internal/harness"
	"shotgun/internal/sim"
	"shotgun/internal/store"
)

// testSweepSpec is a minimal two-cell sweep: one workload, the
// no-prefetch baseline and FDIP, reporting speedup.
const testSweepSpec = `{
  "version": 1,
  "name": "sweep-e2e",
  "tables": [
    {
      "id": "tiny",
      "title": "e2e: FDIP speedup on Nutch",
      "grid": {
        "workloads": ["Nutch"],
        "columns": [
          {"name": "none", "config": {"mechanism": "none"}},
          {"name": "fdip", "config": {"mechanism": "fdip"}}
        ],
        "metric": "speedup"
      }
    }
  ]
}`

func postSweep(t *testing.T, base, query, body string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Post(base+"/v1/sweeps"+query, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, raw
}

// TestSweepEndToEnd round-trips one spec through POST /v1/sweeps:
// submit, wait (the handler is synchronous), check the rendered report,
// poll the expansion's scenario keys through the ordinary job API, and
// prove resubmission dedups onto the same jobs and the same bytes.
func TestSweepEndToEnd(t *testing.T) {
	st, err := store.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	srv, ts := newTestServer(t, st)

	resp, raw := postSweep(t, ts.URL, "", testSweepSpec)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("sweep status %d: %s", resp.StatusCode, raw)
	}
	var out sweepResponse
	if err := json.Unmarshal(raw, &out); err != nil {
		t.Fatalf("decode sweep response: %v", err)
	}
	if out.Name != "sweep-e2e" || out.Scale != "tiny" {
		t.Fatalf("unexpected envelope: name %q scale %q", out.Name, out.Scale)
	}
	// Two cells, one of which IS the baseline: two unique keys.
	if len(out.Keys) != 2 {
		t.Fatalf("expected 2 scenario keys, got %d (%v)", len(out.Keys), out.Keys)
	}
	if len(out.Report.Tables) != 1 {
		t.Fatalf("expected 1 rendered table, got %d", len(out.Report.Tables))
	}
	tab := out.Report.Tables[0]
	if tab.ID != "tiny" || len(tab.Rows) != 1 || len(tab.Rows[0]) != 3 {
		t.Fatalf("unexpected table shape: %+v", tab)
	}
	if tab.Rows[0][1] != "1.000" {
		t.Fatalf("baseline speedup cell should be 1.000, got %q", tab.Rows[0][1])
	}

	// Every expanded scenario is a first-class job: pollable, done, and
	// persisted.
	for _, key := range out.Keys {
		if got := pollScenarioDone(t, ts.URL, key); got.Status != StatusDone {
			t.Fatalf("key %s: status %s, want done", key, got.Status)
		}
	}
	puts := st.Stats().Puts
	if puts != 2 {
		t.Fatalf("store puts = %d, want 2 (one per unique scenario)", puts)
	}

	// The sweep shares the job table with /v1/sims: the FDIP cell's key
	// is the same key a plain config submission gets.
	sims, resp2 := postSims(t, ts.URL, []sim.Config{{Workload: "Nutch", Mechanism: sim.FDIP}})
	if resp2.StatusCode != http.StatusAccepted {
		t.Fatalf("sims status %d", resp2.StatusCode)
	}
	if sims.Sims[0].Status != StatusDone {
		t.Fatalf("deduped sim should be born done, got %q", sims.Sims[0].Status)
	}
	found := false
	for _, key := range out.Keys {
		if key == sims.Sims[0].Key {
			found = true
		}
	}
	if !found {
		t.Fatalf("sim key %s not among sweep keys %v — sweep jobs are not deduping", sims.Sims[0].Key, out.Keys)
	}

	// Resubmitting the sweep dedups completely and renders identically.
	if srv.runner.Workers() < 1 {
		t.Fatal("runner lost its workers")
	}
	resp3, raw3 := postSweep(t, ts.URL, "", testSweepSpec)
	if resp3.StatusCode != http.StatusOK {
		t.Fatalf("resubmit status %d", resp3.StatusCode)
	}
	if !bytes.Equal(raw, raw3) {
		t.Fatalf("resubmitted sweep rendered differently:\n%s\nvs\n%s", raw, raw3)
	}
	if got := st.Stats().Puts; got != puts {
		t.Fatalf("resubmit wrote %d new records, want 0", got-puts)
	}
}

// TestSweepFormatsAndSelection covers the text/csv renders and the
// ?tables= selector.
func TestSweepFormatsAndSelection(t *testing.T) {
	_, ts := newTestServer(t, nil)

	resp, raw := postSweep(t, ts.URL, "?format=text&tables=tiny", testSweepSpec)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("text status %d: %s", resp.StatusCode, raw)
	}
	if !strings.Contains(string(raw), "e2e: FDIP speedup on Nutch") {
		t.Fatalf("text render missing title:\n%s", raw)
	}

	resp, raw = postSweep(t, ts.URL, "?format=csv", testSweepSpec)
	if resp.StatusCode != http.StatusOK || !strings.HasPrefix(string(raw), "table,tiny,") {
		t.Fatalf("csv render wrong (status %d):\n%s", resp.StatusCode, raw)
	}
}

// TestSweepRejections covers the 400 surfaces: malformed spec, unknown
// field, unknown table selection, scale mismatch, bad format.
func TestSweepRejections(t *testing.T) {
	_, ts := newTestServer(t, nil)
	cases := []struct {
		name  string
		query string
		body  string
	}{
		{"malformed json", "", `{"version":`},
		{"unknown field", "", `{"version":1,"name":"x","bogus":true,"tables":[]}`},
		{"wrong version", "", `{"version":9,"name":"x","tables":[]}`},
		{"unknown table selected", "?tables=nope", testSweepSpec},
		{"bad format", "?format=xml", testSweepSpec},
		{"scale mismatch", "", `{
		  "version": 1, "name": "x",
		  "scale": {"warmup_instr": 1000, "measure_instr": 1000, "samples": 1},
		  "tables": [{"id": "t", "title": "t", "grid": {
		    "workloads": ["Nutch"],
		    "columns": [{"name": "none", "config": {"mechanism": "none"}}],
		    "metric": "ipc"}}]
		}`},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			resp, raw := postSweep(t, ts.URL, tc.query, tc.body)
			if resp.StatusCode != http.StatusBadRequest {
				t.Fatalf("status %d, want 400: %s", resp.StatusCode, raw)
			}
		})
	}
}

// TestSweepWaitWakesOnAbandon: a sweep blocked on jobs that will never
// finish (executor swallows them) must answer 503 as soon as Shutdown
// abandons the queue, instead of stalling until the HTTP drain
// deadline kills the connection — while a mere RejectNew (the
// pre-drain step, during which in-flight jobs may still finish) keeps
// the wait alive.
func TestSweepWaitWakesOnAbandon(t *testing.T) {
	srv := New(Config{
		Scale:     tinyScale(),
		ScaleName: "tiny",
		NewExecutor: func(*harness.Runner, dispatch.Sink) dispatch.Executor {
			return sinkExec{}
		},
	})
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() { ts.Close() })

	type result struct {
		code int
		body string
	}
	done := make(chan result, 1)
	go func() {
		resp, raw := postSweep(t, ts.URL, "", testSweepSpec)
		done <- result{resp.StatusCode, string(raw)}
	}()
	// Let the handler enqueue and block on the never-completing jobs.
	// RejectNew alone must NOT wake it: the drain window exists so
	// in-flight work can still finish.
	time.Sleep(200 * time.Millisecond)
	srv.RejectNew()
	select {
	case got := <-done:
		t.Fatalf("RejectNew woke the sweep wait (status %d body %q); only abandonment should", got.code, got.body)
	case <-time.After(300 * time.Millisecond):
	}
	srv.Shutdown()
	select {
	case got := <-done:
		if got.code != http.StatusServiceUnavailable || !strings.Contains(got.body, "shutting down") {
			t.Fatalf("status %d body %q, want 503 shutting-down", got.code, got.body)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("sweep wait did not wake on abandonment")
	}
}
