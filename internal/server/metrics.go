package server

// GET /metrics: hand-rolled Prometheus text exposition (no client
// library — the format is four line shapes). Families are assembled
// from the fair queue, the store, the HTTP middleware counters and, in
// cluster mode, the coordinator's lease table. The families emitted
// here are documented in docs/FARM.md and asserted by the e2e metrics
// smoke test — extend both when adding one.

import (
	"fmt"
	"net/http"
	"sort"
	"strings"

	"shotgun/internal/store"
)

// promEscape escapes a label value per the exposition format.
func promEscape(v string) string {
	r := strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)
	return r.Replace(v)
}

// promWriter accumulates one exposition document.
type promWriter struct {
	b strings.Builder
}

// family starts a new metric family.
func (p *promWriter) family(name, help, typ string) {
	fmt.Fprintf(&p.b, "# HELP %s %s\n# TYPE %s %s\n", name, help, name, typ)
}

// sample emits one unlabeled sample.
func (p *promWriter) sample(name string, v uint64) {
	fmt.Fprintf(&p.b, "%s %d\n", name, v)
}

// tenantSample emits one sample labeled with a tenant ("" renders as
// the anonymous tenant label so the row is still addressable).
func (p *promWriter) tenantSample(name, tenant string, v uint64) {
	if tenant == "" {
		tenant = "anonymous"
	}
	fmt.Fprintf(&p.b, "%s{tenant=\"%s\"} %d\n", name, promEscape(tenant), v)
}

func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	var p promWriter
	fs := s.fair.Stats()

	p.family("shotgun_queue_depth", "Jobs waiting in the fair-share queue across all tenants.", "gauge")
	p.sample("shotgun_queue_depth", uint64(fs.Waiting))
	p.family("shotgun_inflight_jobs", "Jobs resident in the executor (dispatched, not yet terminal).", "gauge")
	p.sample("shotgun_inflight_jobs", uint64(fs.InFlight))
	p.family("shotgun_queue_slots", "Fair-queue residency bound (jobs dispatched at once).", "gauge")
	p.sample("shotgun_queue_slots", uint64(fs.Slots))
	p.family("shotgun_shed_total", "Submissions shed by the global queue bound (503 + Retry-After).", "counter")
	p.sample("shotgun_shed_total", fs.Shed)

	// Per-tenant rows, sorted for a deterministic scrape.
	tenants := make([]string, 0, len(fs.Tenants))
	for name := range fs.Tenants {
		tenants = append(tenants, name)
	}
	sort.Strings(tenants)
	p.family("shotgun_tenant_queued", "Jobs waiting in the fair queue, per tenant.", "gauge")
	for _, t := range tenants {
		p.tenantSample("shotgun_tenant_queued", t, uint64(fs.Tenants[t].Waiting))
	}
	p.family("shotgun_tenant_running", "Jobs resident in the executor, per tenant.", "gauge")
	for _, t := range tenants {
		p.tenantSample("shotgun_tenant_running", t, uint64(fs.Tenants[t].InFlight))
	}
	p.family("shotgun_tenant_completed_total", "Jobs completed, per tenant.", "counter")
	for _, t := range tenants {
		p.tenantSample("shotgun_tenant_completed_total", t, fs.Tenants[t].Completed)
	}
	p.family("shotgun_tenant_failed_total", "Jobs failed, per tenant.", "counter")
	for _, t := range tenants {
		p.tenantSample("shotgun_tenant_failed_total", t, fs.Tenants[t].Failed)
	}
	p.family("shotgun_tenant_rejected_total", "Submissions rejected by quota or shed, per tenant.", "counter")
	for _, t := range tenants {
		p.tenantSample("shotgun_tenant_rejected_total", t, fs.Tenants[t].Rejected)
	}

	// Rate-limit rows exist only for tenants with a max_rps bound —
	// sorted like the scheduler rows for a deterministic scrape.
	if limited := s.limits.rejectedByTenant(); len(limited) > 0 {
		names := make([]string, 0, len(limited))
		for name := range limited {
			names = append(names, name)
		}
		sort.Strings(names)
		p.family("shotgun_tenant_rate_limited_total", "Requests rejected by the tenant's max_rps bound (429 rate_limited).", "counter")
		for _, t := range names {
			p.tenantSample("shotgun_tenant_rate_limited_total", t, limited[t])
		}
	}

	if s.st != nil {
		st := s.st.Stats()
		p.family("shotgun_store_hits_total", "Persistent-store reads that found a record.", "counter")
		p.sample("shotgun_store_hits_total", st.Hits)
		p.family("shotgun_store_misses_total", "Persistent-store reads that found nothing.", "counter")
		p.sample("shotgun_store_misses_total", st.Misses)
		p.family("shotgun_store_puts_total", "Persistent-store records written.", "counter")
		p.sample("shotgun_store_puts_total", st.Puts)
		p.family("shotgun_store_records", "Records currently indexed by the store.", "gauge")
		p.sample("shotgun_store_records", uint64(st.Records))

		// Sharded backend: one health row per shard, so a dead shard
		// shows up on the dashboard before a read ever misses.
		if sh, ok := s.st.(*store.Sharded); ok {
			health := sh.Health()
			p.family("shotgun_store_shard_up", "Shard reachability (1 up, 0 down), per shard URL.", "gauge")
			for _, h := range health {
				up := uint64(0)
				if h.Up {
					up = 1
				}
				fmt.Fprintf(&p.b, "shotgun_store_shard_up{shard=%q} %d\n", promEscape(h.URL), up)
			}
			p.family("shotgun_store_shard_records", "Records held per shard (-1 when unreachable).", "gauge")
			for _, h := range health {
				fmt.Fprintf(&p.b, "shotgun_store_shard_records{shard=%q} %d\n", promEscape(h.URL), h.Records)
			}
		}
	}

	if s.clusterStats != nil {
		cs := s.clusterStats()
		p.family("shotgun_lease_granted_total", "Jobs leased to cluster workers.", "counter")
		p.sample("shotgun_lease_granted_total", cs.Leased)
		p.family("shotgun_lease_requeued_total", "Leases expired and requeued (worker death or stall).", "counter")
		p.sample("shotgun_lease_requeued_total", cs.Requeued)
		p.family("shotgun_lease_expired_total", "Jobs failed after exhausting their lease-attempt budget.", "counter")
		p.sample("shotgun_lease_expired_total", cs.Expired)
		p.family("shotgun_cluster_workers", "Workers seen within two lease TTLs.", "gauge")
		p.sample("shotgun_cluster_workers", uint64(cs.ActiveWorkers))
	}

	p.family("shotgun_http_responses_total", "HTTP responses by status class.", "counter")
	for _, c := range []struct {
		class string
		n     uint64
	}{
		{"2xx", s.httpStats.by2xx.Load()},
		{"4xx", s.httpStats.by4xx.Load()},
		{"5xx", s.httpStats.by5xx.Load()},
	} {
		fmt.Fprintf(&p.b, "shotgun_http_responses_total{class=%q} %d\n", c.class, c.n)
	}

	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	fmt.Fprint(w, p.b.String())
}
