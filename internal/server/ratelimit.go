package server

// Per-tenant HTTP request rate limiting: a classic token bucket per
// tenant with a max_rps refill rate and an equal burst, sitting inside
// the auth middleware so the bucket is keyed by the AUTHENTICATED
// tenant (an attacker cannot drain another tenant's bucket by guessing
// names, and unauthenticated requests never touch a bucket). Quotas
// (MaxQueued) bound how much work a tenant may hold; max_rps bounds how
// often a tenant may knock — together they keep a chatty poller from
// monopolizing handler time the same way the fair queue keeps a big
// sweep from monopolizing simulation time.

import (
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"shotgun/internal/client"
)

// tenantLimiter is one tenant's token bucket plus its rejection
// counter for /metrics.
type tenantLimiter struct {
	mu     sync.Mutex
	rps    float64
	burst  float64
	tokens float64
	last   time.Time

	rejected atomic.Uint64
}

// allow takes one token at the given instant, reporting whether the
// request may proceed and, when it may not, how long until a token is
// available (the Retry-After hint).
func (l *tenantLimiter) allow(now time.Time) (bool, time.Duration) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if !l.last.IsZero() {
		l.tokens += now.Sub(l.last).Seconds() * l.rps
		if l.tokens > l.burst {
			l.tokens = l.burst
		}
	}
	l.last = now
	if l.tokens >= 1 {
		l.tokens--
		return true, 0
	}
	wait := time.Duration((1 - l.tokens) / l.rps * float64(time.Second))
	return false, wait
}

// rateLimiters holds the per-tenant buckets. Built once from the
// immutable registry, so lookups need no lock; tenants with no max_rps
// have no entry and are never throttled.
type rateLimiters struct {
	byTenant map[string]*tenantLimiter
}

// newRateLimiters builds buckets for every tenant with a rate bound.
// A nil registry (auth off) yields an empty set — the anonymous tenant
// is unlimited.
func newRateLimiters(reg *TenantRegistry) *rateLimiters {
	rl := &rateLimiters{byTenant: make(map[string]*tenantLimiter)}
	if reg == nil {
		return rl
	}
	for _, t := range reg.list {
		if t.MaxRPS <= 0 {
			continue
		}
		rl.byTenant[t.Name] = &tenantLimiter{
			rps:    float64(t.MaxRPS),
			burst:  float64(t.MaxRPS),
			tokens: float64(t.MaxRPS),
		}
	}
	return rl
}

// rejectedByTenant snapshots the rate-limited request counters for the
// metrics exposition.
func (rl *rateLimiters) rejectedByTenant() map[string]uint64 {
	out := make(map[string]uint64, len(rl.byTenant))
	for name, l := range rl.byTenant {
		out[name] = l.rejected.Load()
	}
	return out
}

// rateLimitMiddleware answers 429 + Retry-After when the authenticated
// tenant's bucket is empty. It must run INSIDE authMiddleware (auth
// fills the tenant into the request context) and skips the same exempt
// routes auth does — health probes and scrapes are infrastructure, not
// tenant traffic.
func rateLimitMiddleware(rl *rateLimiters, next http.Handler) http.Handler {
	if len(rl.byTenant) == 0 {
		return next
	}
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if authExempt(r.URL.Path) {
			next.ServeHTTP(w, r)
			return
		}
		l, bounded := rl.byTenant[tenantFrom(r.Context())]
		if !bounded {
			next.ServeHTTP(w, r)
			return
		}
		ok, wait := l.allow(time.Now())
		if !ok {
			l.rejected.Add(1)
			client.WriteErrorRetryAfter(w, http.StatusTooManyRequests, client.CodeRateLimited, wait,
				"request rate above the tenant's max_rps; slow down and retry")
			return
		}
		next.ServeHTTP(w, r)
	})
}
