package server

// HTTP middleware: API-key authentication against the tenant registry
// and structured request logging. Both wrap the whole v1 surface from
// Handler(); the cluster lease routes (mounted beside the handler by
// shotgun-server) are cluster-internal and deliberately outside them.

import (
	"context"
	"log/slog"
	"net/http"
	"strings"
	"sync/atomic"
	"time"

	"shotgun/internal/client"
)

// ctxKey keys the request-scoped info holder.
type ctxKey int

const reqInfoKey ctxKey = 0

// reqInfo is a mutable per-request holder: the logging middleware
// installs it before auth runs, and auth fills the tenant in, so the
// access log line can carry the tenant without the middlewares caring
// about wrap order.
type reqInfo struct {
	tenant atomic.Pointer[string]
}

// withReqInfo returns ctx with a fresh holder (and the holder).
func withReqInfo(ctx context.Context) (context.Context, *reqInfo) {
	ri := &reqInfo{}
	return context.WithValue(ctx, reqInfoKey, ri), ri
}

// setTenant records the authenticated tenant for handlers and logs.
func setTenant(ctx context.Context, name string) {
	if ri, ok := ctx.Value(reqInfoKey).(*reqInfo); ok {
		ri.tenant.Store(&name)
	}
}

// tenantFrom returns the authenticated tenant name ("" when auth is
// off or the route is exempt).
func tenantFrom(ctx context.Context) string {
	if ri, ok := ctx.Value(reqInfoKey).(*reqInfo); ok {
		if p := ri.tenant.Load(); p != nil {
			return *p
		}
	}
	return ""
}

// authExempt lists routes that must work without a key: health and
// compatibility probes (load balancers, deploy tooling) and the
// metrics scrape.
func authExempt(path string) bool {
	switch path {
	case "/healthz", "/v1/version", "/metrics":
		return true
	}
	return false
}

// bearerKey extracts the API key from an Authorization: Bearer header.
// The scheme comparison is case-insensitive per RFC 7235; everything
// after the single space is the key, verbatim.
func bearerKey(header string) (string, bool) {
	const prefix = "bearer "
	if len(header) < len(prefix) || !strings.EqualFold(header[:len(prefix)], prefix) {
		return "", false
	}
	key := header[len(prefix):]
	if key == "" || len(key) > maxTenantKey {
		return "", false
	}
	return key, true
}

// authMiddleware rejects requests whose Authorization header does not
// resolve to a registered tenant. reg == nil disables auth entirely:
// every request runs as the anonymous tenant "".
func authMiddleware(reg *TenantRegistry, next http.Handler) http.Handler {
	if reg == nil {
		return next
	}
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if authExempt(r.URL.Path) {
			next.ServeHTTP(w, r)
			return
		}
		key, ok := bearerKey(r.Header.Get("Authorization"))
		if !ok {
			client.WriteError(w, http.StatusUnauthorized, client.CodeUnauthorized,
				"missing or malformed Authorization header (want \"Bearer <api-key>\")")
			return
		}
		t, known := reg.Lookup(key)
		if !known {
			client.WriteError(w, http.StatusUnauthorized, client.CodeUnauthorized, "unknown API key")
			return
		}
		setTenant(r.Context(), t.Name)
		next.ServeHTTP(w, r)
	})
}

// statusWriter captures the response status for logging and metrics.
// It passes http.Flusher through — the SSE sweep stream needs to flush
// events through this wrapper.
type statusWriter struct {
	http.ResponseWriter
	status int
}

func (w *statusWriter) WriteHeader(code int) {
	if w.status == 0 {
		w.status = code
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(b []byte) (int, error) {
	if w.status == 0 {
		w.status = http.StatusOK
	}
	return w.ResponseWriter.Write(b)
}

// Flush implements http.Flusher when the underlying writer does.
func (w *statusWriter) Flush() {
	if f, ok := w.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// logMiddleware installs the request-info holder, counts the request
// in the HTTP metrics, and emits one structured access line per
// request: route, status, duration, and the tenant auth resolved.
func logMiddleware(log *slog.Logger, m *httpMetrics, next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		ctx, ri := withReqInfo(r.Context())
		sw := &statusWriter{ResponseWriter: w}
		start := time.Now()
		next.ServeHTTP(sw, r.WithContext(ctx))
		status := sw.status
		if status == 0 {
			status = http.StatusOK
		}
		m.observe(status)
		tenant := ""
		if p := ri.tenant.Load(); p != nil {
			tenant = *p
		}
		log.Info("request",
			slog.String("method", r.Method),
			slog.String("path", r.URL.Path),
			slog.Int("status", status),
			slog.Duration("dur", time.Since(start)),
			slog.String("tenant", tenant),
		)
	})
}

// httpMetrics counts responses by status class for /metrics.
type httpMetrics struct {
	by2xx, by4xx, by5xx, byOther atomic.Uint64
}

func (m *httpMetrics) observe(status int) {
	switch {
	case status >= 200 && status < 300:
		m.by2xx.Add(1)
	case status >= 400 && status < 500:
		m.by4xx.Add(1)
	case status >= 500:
		m.by5xx.Add(1)
	default:
		m.byOther.Add(1)
	}
}
