package server

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestParseTenantsValid(t *testing.T) {
	reg, err := ParseTenants([]byte(`{"tenants":[
		{"name":"acme","key":"ka","weight":3,"max_queued":100,"max_in_flight":4},
		{"name":"solo","key":"ks"}
	]}`))
	if err != nil {
		t.Fatal(err)
	}
	got, ok := reg.Lookup("ka")
	if !ok || got.Name != "acme" || got.Weight != 3 || got.MaxQueued != 100 || got.MaxInFlight != 4 {
		t.Fatalf("lookup acme: %+v ok=%v", got, ok)
	}
	if _, ok := reg.Lookup("nope"); ok {
		t.Fatal("unknown key resolved")
	}
	rows := reg.Tenants()
	if len(rows) != 2 || rows[0].Name != "acme" || rows[1].Name != "solo" {
		t.Fatalf("rows wrong: %+v", rows)
	}
	// The returned slice is a copy: mutating it must not touch the
	// registry.
	rows[0].Name = "mutated"
	if again, _ := reg.Lookup("ka"); again.Name != "acme" {
		t.Fatal("Tenants() exposed registry internals")
	}

	pols := reg.Policies()
	if len(pols) != 2 {
		t.Fatalf("policies: %+v", pols)
	}
	if p := pols[0]; p.Name != "acme" || p.Weight != 3 || p.MaxQueued != 100 || p.MaxInFlight != 4 {
		t.Fatalf("policy fields dropped: %+v", p)
	}
	var nilReg *TenantRegistry
	if nilReg.Policies() != nil {
		t.Fatal("nil registry must yield nil policies")
	}
}

func TestParseTenantsRejections(t *testing.T) {
	longName := strings.Repeat("n", maxTenantName+1)
	longKey := strings.Repeat("k", maxTenantKey+1)
	cases := map[string]string{
		"bad json":        `{`,
		"no tenants":      `{"tenants":[]}`,
		"empty doc":       `{}`,
		"empty name":      `{"tenants":[{"name":"","key":"k"}]}`,
		"long name":       `{"tenants":[{"name":"` + longName + `","key":"k"}]}`,
		"quoted name":     `{"tenants":[{"name":"a\"b","key":"k"}]}`,
		"backslash name":  `{"tenants":[{"name":"a\\b","key":"k"}]}`,
		"newline name":    `{"tenants":[{"name":"a\nb","key":"k"}]}`,
		"empty key":       `{"tenants":[{"name":"a","key":""}]}`,
		"long key":        `{"tenants":[{"name":"a","key":"` + longKey + `"}]}`,
		"negative weight": `{"tenants":[{"name":"a","key":"k","weight":-1}]}`,
		"negative quota":  `{"tenants":[{"name":"a","key":"k","max_queued":-1}]}`,
		"duplicate name":  `{"tenants":[{"name":"a","key":"k1"},{"name":"a","key":"k2"}]}`,
		"duplicate key":   `{"tenants":[{"name":"a","key":"k"},{"name":"b","key":"k"}]}`,
	}
	for name, doc := range cases {
		t.Run(name, func(t *testing.T) {
			if _, err := ParseTenants([]byte(doc)); err == nil {
				t.Fatalf("parsed invalid registry %s", doc)
			}
		})
	}
}

func TestLoadTenants(t *testing.T) {
	path := filepath.Join(t.TempDir(), "tenants.json")
	doc := `{"tenants":[{"name":"a","key":"k"}]}`
	if err := os.WriteFile(path, []byte(doc), 0o644); err != nil {
		t.Fatal(err)
	}
	reg, err := LoadTenants(path)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := reg.Lookup("k"); !ok {
		t.Fatal("loaded registry missing tenant")
	}
	if _, err := LoadTenants(filepath.Join(t.TempDir(), "missing.json")); err == nil {
		t.Fatal("missing file must error")
	}
}

func TestBearerKey(t *testing.T) {
	cases := []struct {
		header string
		key    string
		ok     bool
	}{
		{"Bearer abc", "abc", true},
		{"bearer abc", "abc", true},
		{"BEARER abc", "abc", true},
		{"Bearer " + strings.Repeat("k", maxTenantKey), strings.Repeat("k", maxTenantKey), true},
		{"Bearer " + strings.Repeat("k", maxTenantKey+1), "", false},
		{"Bearer ", "", false},
		{"Bearer", "", false},
		{"Basic abc", "", false},
		{"", "", false},
		{"abc", "", false},
	}
	for _, tc := range cases {
		key, ok := bearerKey(tc.header)
		if key != tc.key || ok != tc.ok {
			t.Errorf("bearerKey(%q) = %q,%v want %q,%v", tc.header, key, ok, tc.key, tc.ok)
		}
	}
}
