package dispatch

import (
	"testing"
	"time"

	"shotgun/internal/store"
)

// TestReaperRequeuesWithoutTraffic is the regression test for lazy
// lease reaping: before the periodic reaper, an expired lease sat dead
// until the next worker poll touched the table — a quiet cluster never
// requeued anything. Here NO table entry point runs after expiry
// (Stats deliberately does not reap), so only the background ticker
// can flip the Requeued counter.
func TestReaperRequeuesWithoutTraffic(t *testing.T) {
	clk := newFakeClock()
	sink := newRecSink()
	c := NewCoordinator(CoordinatorConfig{
		LeaseTTL:  time.Minute,
		Sink:      sink,
		Now:       clk.Now,
		ReapEvery: time.Millisecond,
	})
	defer c.Stop(true)
	if err := c.Enqueue("k1", scenarioOf(1)); err != nil {
		t.Fatal(err)
	}
	if jobs, _ := c.Lease("w", 1); len(jobs) != 1 {
		t.Fatalf("lease = %+v", jobs)
	}
	clk.Advance(2 * time.Minute)

	deadline := time.Now().Add(10 * time.Second)
	for c.Stats().Requeued == 0 {
		if time.Now().After(deadline) {
			t.Fatal("reaper never requeued the expired lease without worker traffic")
		}
		time.Sleep(time.Millisecond)
	}
	sink.mu.Lock()
	requeued := append([]string(nil), sink.requeued...)
	sink.mu.Unlock()
	if len(requeued) != 1 || requeued[0] != "k1" {
		t.Fatalf("sink requeues = %v", requeued)
	}
	// The job is back in the queue, leaseable again.
	if jobs, _ := c.Lease("w2", 1); len(jobs) != 1 || jobs[0].Key != "k1" {
		t.Fatalf("requeued job not re-granted: %+v", jobs)
	}
}

// TestReaperDisabled: a negative ReapEvery turns the ticker off and
// expiry falls back to the lazy path (reaped on the next table touch).
func TestReaperDisabled(t *testing.T) {
	clk := newFakeClock()
	c, _ := newTestCoordinator(t, clk, nil, 0, 0)
	defer c.Stop(true)
	if err := c.Enqueue("k1", scenarioOf(1)); err != nil {
		t.Fatal(err)
	}
	c.Lease("w", 1)
	clk.Advance(2 * time.Minute)
	time.Sleep(20 * time.Millisecond)
	if got := c.Stats().Requeued; got != 0 {
		t.Fatalf("requeued = %d with reaper disabled and no traffic", got)
	}
	// The next worker poll still reaps.
	if jobs, _ := c.Lease("w2", 1); len(jobs) != 1 || jobs[0].Key != "k1" {
		t.Fatalf("lazy reap on poll broken: %+v", jobs)
	}
}

// TestRegisterWorkerAdoptsInFlight: a worker failing over presents a
// lease the coordinator has never seen; the coordinator adopts it so
// the worker keeps its work and a later resubmission dedups onto it.
func TestRegisterWorkerAdoptsInFlight(t *testing.T) {
	clk := newFakeClock()
	c, sink := newTestCoordinator(t, clk, nil, 0, 0)
	defer c.Stop(true)
	sc := scenarioOf(1)
	key := store.ScenarioKey(sc)

	lost := c.RegisterWorker("w1", []LeasedJob{{Key: key, Scenario: sc}})
	if len(lost) != 0 {
		t.Fatalf("lost = %v", lost)
	}
	s := c.Stats()
	if s.Adopted != 1 || s.InFlight != 1 || s.Leased != 0 {
		t.Fatalf("stats = %+v", s)
	}
	// The adopted lease is owned: nobody else can lease the key, and a
	// resubmitted sweep enqueue is a dedup no-op.
	if jobs, _ := c.Lease("w2", 4); len(jobs) != 0 {
		t.Fatalf("adopted lease double-granted: %+v", jobs)
	}
	if err := c.Enqueue(key, sc); err != nil {
		t.Fatal(err)
	}
	if jobs, _ := c.Lease("w2", 4); len(jobs) != 0 {
		t.Fatalf("resubmission twinned the adopted lease: %+v", jobs)
	}
	// The adopting worker completes it like any other lease.
	if ok, err := c.Complete("w1", key, resultOf(sc), ""); err != nil || !ok {
		t.Fatalf("complete = %v, %v", ok, err)
	}
	if done := sink.doneKeys(); len(done) != 1 || done[0] != key {
		t.Fatalf("sink done = %v", done)
	}
}

// TestRegisterWorkerRenewsOwnLease: re-registering a lease the worker
// already holds is a renewal, not an adoption.
func TestRegisterWorkerRenewsOwnLease(t *testing.T) {
	clk := newFakeClock()
	c, _ := newTestCoordinator(t, clk, nil, 0, 0)
	defer c.Stop(true)
	sc := scenarioOf(1)
	key := store.ScenarioKey(sc)
	if err := c.Enqueue(key, sc); err != nil {
		t.Fatal(err)
	}
	jobs, _ := c.Lease("w1", 1)
	if len(jobs) != 1 {
		t.Fatalf("lease = %+v", jobs)
	}

	clk.Advance(40 * time.Second)
	if lost := c.RegisterWorker("w1", jobs); len(lost) != 0 {
		t.Fatalf("lost = %v", lost)
	}
	if s := c.Stats(); s.Adopted != 0 {
		t.Fatalf("renewal counted as adoption: %+v", s)
	}
	// The registration reset the clock: 80s after the original grant
	// (but only 40s after the renewal) the lease is still live.
	clk.Advance(40 * time.Second)
	c.Reap()
	if s := c.Stats(); s.Requeued != 0 {
		t.Fatalf("renewed lease expired: %+v", s)
	}
}

// TestRegisterWorkerRefusals: everything the handshake must NOT adopt
// — keys already finished in the store, keys owned by a live worker,
// and keys that do not address the scenario the worker claims.
func TestRegisterWorkerRefusals(t *testing.T) {
	clk := newFakeClock()
	st, err := store.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	c, _ := newTestCoordinator(t, clk, st, 0, 0)
	defer c.Stop(true)

	scDone := scenarioOf(1)
	keyDone := store.ScenarioKey(scDone)
	if err := st.PutScenario(scDone, resultOf(scDone)); err != nil {
		t.Fatal(err)
	}
	scLive := scenarioOf(2)
	keyLive := store.ScenarioKey(scLive)
	if err := c.Enqueue(keyLive, scLive); err != nil {
		t.Fatal(err)
	}
	if jobs, _ := c.Lease("owner", 1); len(jobs) != 1 {
		t.Fatalf("setup lease = %+v", jobs)
	}
	scBad := scenarioOf(3)

	lost := c.RegisterWorker("w1", []LeasedJob{
		{Key: keyDone, Scenario: scDone},      // finished before the failover
		{Key: keyLive, Scenario: scLive},      // live owner elsewhere
		{Key: "not-the-key", Scenario: scBad}, // key does not address the scenario
		{Key: "", Scenario: scBad},            // no key at all
	})
	if len(lost) != 4 {
		t.Fatalf("lost = %v, want all 4 refused", lost)
	}
	refused := map[string]bool{}
	for _, k := range lost {
		refused[k] = true
	}
	for _, k := range []string{keyDone, keyLive, "not-the-key", ""} {
		if !refused[k] {
			t.Fatalf("key %q not refused: %v", k, lost)
		}
	}
	if s := c.Stats(); s.Adopted != 0 {
		t.Fatalf("refused jobs counted as adopted: %+v", s)
	}
	// The live owner kept its lease.
	if jobs, _ := c.Lease("w1", 4); len(jobs) != 0 {
		t.Fatalf("owner's lease stolen: %+v", jobs)
	}
}

// TestStandbyActivatesOnWorkerContact: a standby stays standby through
// submissions and flips active on the first worker handshake, adopting
// a resubmitted pending task instead of twinning it.
func TestStandbyActivatesOnWorkerContact(t *testing.T) {
	clk := newFakeClock()
	sink := newRecSink()
	c := NewCoordinator(CoordinatorConfig{
		LeaseTTL:  time.Minute,
		Sink:      sink,
		Now:       clk.Now,
		Standby:   true,
		ReapEvery: -1,
	})
	defer c.Stop(true)
	sc := scenarioOf(1)
	key := store.ScenarioKey(sc)

	if got := c.Stats().Role; got != "standby" {
		t.Fatalf("role = %q, want standby", got)
	}
	// The sweep is resubmitted before the worker makes contact: the key
	// sits pending, and the standby is still a standby.
	if err := c.Enqueue(key, sc); err != nil {
		t.Fatal(err)
	}
	if got := c.Stats().Role; got != "standby" {
		t.Fatalf("enqueue flipped the standby active (role %q)", got)
	}

	lost := c.RegisterWorker("w1", []LeasedJob{{Key: key, Scenario: sc}})
	if len(lost) != 0 {
		t.Fatalf("lost = %v", lost)
	}
	s := c.Stats()
	if s.Role != "active" {
		t.Fatalf("worker contact did not activate the standby: %+v", s)
	}
	if s.Adopted != 1 || s.InFlight != 1 {
		t.Fatalf("pending task not adopted: %+v", s)
	}
	// Adopted FROM pending, not duplicated: the queue is empty now.
	if jobs, _ := c.Lease("w2", 4); len(jobs) != 0 {
		t.Fatalf("pending twin leased: %+v", jobs)
	}
}
