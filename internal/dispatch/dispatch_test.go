package dispatch

import (
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"shotgun/internal/harness"
	"shotgun/internal/sim"
	"shotgun/internal/store"
)

// recSink records job lifecycle events for assertions.
type recSink struct {
	mu       sync.Mutex
	running  []string
	requeued []string
	done     []string
	failed   map[string]string
	results  map[string]sim.ScenarioResult
}

func newRecSink() *recSink {
	return &recSink{failed: map[string]string{}, results: map[string]sim.ScenarioResult{}}
}

func (s *recSink) JobRunning(key string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.running = append(s.running, key)
}

func (s *recSink) JobRequeued(key string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.requeued = append(s.requeued, key)
}

func (s *recSink) JobDone(key string, res sim.ScenarioResult) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.done = append(s.done, key)
	s.results[key] = res
}

func (s *recSink) JobFailed(key, msg string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.failed[key] = msg
}

func (s *recSink) doneKeys() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]string(nil), s.done...)
}

// fakeClock drives lease expiry deterministically.
type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func newFakeClock() *fakeClock { return &fakeClock{t: time.Unix(1_700_000_000, 0)} }

func (c *fakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *fakeClock) Advance(d time.Duration) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.t = c.t.Add(d)
}

// scenarioOf builds a normalized n-core scenario for table tests (no
// simulation runs in coordinator unit tests).
func scenarioOf(n int) sim.Scenario {
	var cores []sim.Config
	for i := 0; i < n; i++ {
		cores = append(cores, sim.Config{Workload: "Oracle", Mechanism: sim.None,
			WarmupInstr: 1000, MeasureInstr: 1000, Samples: 1})
	}
	return sim.Scenario{Cores: cores}.Normalized()
}

// resultOf fabricates a result of the right shape.
func resultOf(sc sim.Scenario) sim.ScenarioResult {
	res := sim.ScenarioResult{}
	for _, cfg := range sc.Cores {
		res.Cores = append(res.Cores, sim.Result{Workload: cfg.Workload, Mechanism: cfg.Mechanism})
	}
	return res
}

func newTestCoordinator(t *testing.T, clk *fakeClock, st *store.Store, depth, attempts int) (*Coordinator, *recSink) {
	t.Helper()
	sink := newRecSink()
	c := NewCoordinator(CoordinatorConfig{
		LeaseTTL:    time.Minute,
		QueueDepth:  depth,
		MaxAttempts: attempts,
		Store:       st,
		Sink:        sink,
		Now:         clk.Now,
	})
	return c, sink
}

func TestCoordinatorLeaseExpiryRequeues(t *testing.T) {
	clk := newFakeClock()
	c, sink := newTestCoordinator(t, clk, nil, 0, 0)
	sc := scenarioOf(1)
	if err := c.Enqueue("k1", sc); err != nil {
		t.Fatal(err)
	}

	jobs, ttl := c.Lease("a", 4)
	if len(jobs) != 1 || jobs[0].Key != "k1" || ttl != time.Minute {
		t.Fatalf("lease = %+v ttl %v", jobs, ttl)
	}
	// The job is leased: nobody else gets it while the lease is live.
	if jobs, _ := c.Lease("b", 4); len(jobs) != 0 {
		t.Fatalf("double-leased: %+v", jobs)
	}

	// The worker dies (no heartbeat). Past the TTL, the next poll
	// requeues and re-grants.
	clk.Advance(time.Minute + time.Second)
	jobs, _ = c.Lease("b", 4)
	if len(jobs) != 1 || jobs[0].Key != "k1" {
		t.Fatalf("expired job not re-granted: %+v", jobs)
	}
	st := c.Stats()
	if st.Requeued != 1 || st.Leased != 2 {
		t.Fatalf("stats = %+v", st)
	}
	if len(sink.requeued) != 1 || sink.requeued[0] != "k1" {
		t.Fatalf("sink requeues = %v", sink.requeued)
	}
}

func TestCoordinatorHeartbeatExtendsLease(t *testing.T) {
	clk := newFakeClock()
	c, _ := newTestCoordinator(t, clk, nil, 0, 0)
	if err := c.Enqueue("k1", scenarioOf(1)); err != nil {
		t.Fatal(err)
	}
	c.Lease("a", 1)

	// Two 45s waits each straddle the 60s TTL, but a heartbeat between
	// them keeps the lease alive.
	clk.Advance(45 * time.Second)
	if lost := c.Heartbeat("a", []string{"k1"}); len(lost) != 0 {
		t.Fatalf("live lease reported lost: %v", lost)
	}
	clk.Advance(45 * time.Second)
	if jobs, _ := c.Lease("b", 1); len(jobs) != 0 {
		t.Fatalf("heartbeated lease was stolen: %+v", jobs)
	}

	// A heartbeat for a key the worker does not own reports it lost.
	if lost := c.Heartbeat("b", []string{"k1", "nope"}); len(lost) != 2 {
		t.Fatalf("foreign heartbeat lost = %v, want both", lost)
	}
}

func TestCoordinatorCompletePersistsAndDedups(t *testing.T) {
	st, err := store.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	clk := newFakeClock()
	c, sink := newTestCoordinator(t, clk, st, 0, 0)
	sc := scenarioOf(2)
	if err := c.Enqueue("k1", sc); err != nil {
		t.Fatal(err)
	}
	c.Lease("a", 1)

	accepted, err := c.Complete("a", "k1", resultOf(sc), "")
	if err != nil || !accepted {
		t.Fatalf("complete = %v, %v", accepted, err)
	}
	if got, ok := st.GetScenario(sc); !ok || len(got.Cores) != 2 {
		t.Fatalf("record not persisted: %v %v", got, ok)
	}
	// A second push of the same key is a no-op, not a second record.
	accepted, err = c.Complete("a", "k1", resultOf(sc), "")
	if err != nil || accepted {
		t.Fatalf("dup complete = %v, %v", accepted, err)
	}
	if s := c.Stats(); s.Completed != 1 || s.DupCompletes != 1 {
		t.Fatalf("stats = %+v", s)
	}
	if got := sink.doneKeys(); len(got) != 1 {
		t.Fatalf("sink done twice: %v", got)
	}
	if st.Stats().Puts != 1 {
		t.Fatalf("store puts = %d, want 1", st.Stats().Puts)
	}
}

// TestCoordinatorStaleOwnerCompleteAccepted: a worker that lost its
// lease but finished anyway still completes the job — its work is
// valid, and accepting it stops the replacement's result from being a
// wasted simulation... which then reports accepted=false and moves on.
func TestCoordinatorStaleOwnerCompleteAccepted(t *testing.T) {
	clk := newFakeClock()
	c, sink := newTestCoordinator(t, clk, nil, 0, 0)
	sc := scenarioOf(1)
	c.Enqueue("k1", sc)
	c.Lease("a", 1)
	clk.Advance(2 * time.Minute)
	if jobs, _ := c.Lease("b", 1); len(jobs) != 1 {
		t.Fatalf("requeue to b failed: %+v", jobs)
	}
	// a (stale) finishes first: accepted.
	if accepted, err := c.Complete("a", "k1", resultOf(sc), ""); err != nil || !accepted {
		t.Fatalf("stale complete = %v, %v", accepted, err)
	}
	// b's redundant result: dropped.
	if accepted, err := c.Complete("b", "k1", resultOf(sc), ""); err != nil || accepted {
		t.Fatalf("redundant complete = %v, %v", accepted, err)
	}
	if got := sink.doneKeys(); len(got) != 1 {
		t.Fatalf("sink done %d times, want 1", len(got))
	}
}

func TestCoordinatorAttemptBudgetFailsJob(t *testing.T) {
	clk := newFakeClock()
	c, sink := newTestCoordinator(t, clk, nil, 0, 2)
	c.Enqueue("k1", scenarioOf(1))
	for i := 0; i < 2; i++ {
		if jobs, _ := c.Lease("a", 1); len(jobs) != 1 {
			t.Fatalf("attempt %d not granted", i)
		}
		clk.Advance(2 * time.Minute)
	}
	// Second expiry exhausts the budget on the next table scan.
	c.Lease("a", 1)
	sink.mu.Lock()
	msg, failed := sink.failed["k1"]
	sink.mu.Unlock()
	if !failed || !strings.Contains(msg, "expired") {
		t.Fatalf("job not failed after budget: %q %v", msg, failed)
	}
	if s := c.Stats(); s.Expired != 1 || s.Pending != 0 || s.InFlight != 0 {
		t.Fatalf("stats = %+v", s)
	}
}

func TestCoordinatorRejectsWrongShapeResult(t *testing.T) {
	clk := newFakeClock()
	c, sink := newTestCoordinator(t, clk, nil, 0, 0)
	sc := scenarioOf(2)
	c.Enqueue("k1", sc)
	c.Lease("a", 1)
	_, err := c.Complete("a", "k1", sim.ScenarioResult{Cores: make([]sim.Result, 1)}, "")
	if err == nil {
		t.Fatal("wrong-shape result accepted")
	}
	// The job survives: back in the queue, not lost and not done.
	if jobs, _ := c.Lease("b", 1); len(jobs) != 1 || jobs[0].Key != "k1" {
		t.Fatalf("malformed push lost the job: %+v", jobs)
	}
	if len(sink.doneKeys()) != 0 {
		t.Fatal("malformed push marked the job done")
	}
}

func TestCoordinatorWorkerErrorFailsJob(t *testing.T) {
	clk := newFakeClock()
	c, sink := newTestCoordinator(t, clk, nil, 0, 0)
	c.Enqueue("k1", scenarioOf(1))
	c.Lease("a", 1)
	if accepted, err := c.Complete("a", "k1", sim.ScenarioResult{}, "engine exploded"); err != nil || !accepted {
		t.Fatalf("error complete = %v, %v", accepted, err)
	}
	sink.mu.Lock()
	defer sink.mu.Unlock()
	if sink.failed["k1"] != "engine exploded" {
		t.Fatalf("failure not propagated: %q", sink.failed["k1"])
	}
}

func TestCoordinatorQueueLimits(t *testing.T) {
	clk := newFakeClock()
	c, _ := newTestCoordinator(t, clk, nil, 1, 0)
	if err := c.Enqueue("k1", scenarioOf(1)); err != nil {
		t.Fatal(err)
	}
	if err := c.Enqueue("k2", scenarioOf(1)); err != ErrQueueFull {
		t.Fatalf("overflow = %v, want ErrQueueFull", err)
	}
	// Leased jobs still count toward the backlog bound.
	c.Lease("a", 1)
	if err := c.Enqueue("k2", scenarioOf(1)); err != ErrQueueFull {
		t.Fatalf("leased slot not counted: %v", err)
	}
	c.Stop(true)
	if err := c.Enqueue("k3", scenarioOf(1)); err != ErrClosing {
		t.Fatalf("post-stop = %v, want ErrClosing", err)
	}
	// A halted coordinator grants no further leases.
	if jobs, _ := c.Lease("a", 1); len(jobs) != 0 {
		t.Fatalf("halted coordinator leased: %+v", jobs)
	}
}

// TestCoordinatorPrunesDeadWorkers: worker-liveness entries are
// dropped once a worker has been silent past the Stats activeness
// window, so churning unique worker names cannot grow memory without
// bound.
func TestCoordinatorPrunesDeadWorkers(t *testing.T) {
	clk := newFakeClock()
	c, _ := newTestCoordinator(t, clk, nil, 0, 0)
	for i := 0; i < 50; i++ {
		c.Lease(fmt.Sprintf("transient-%d", i), 1)
	}
	if s := c.Stats(); s.ActiveWorkers != 50 {
		t.Fatalf("active workers = %d, want 50", s.ActiveWorkers)
	}
	clk.Advance(3 * time.Minute) // past the 2*TTL window
	c.Lease("steady", 1)         // any table access reaps
	c.mu.Lock()
	n := len(c.lastSeen)
	c.mu.Unlock()
	if n != 1 {
		t.Fatalf("lastSeen holds %d entries after prune, want 1", n)
	}
	if s := c.Stats(); s.ActiveWorkers != 1 {
		t.Fatalf("active workers = %d, want 1", s.ActiveWorkers)
	}
}

// tinyScale keeps local-pool tests fast.
func tinyScale() harness.Scale {
	return harness.Scale{WarmupInstr: 60_000, MeasureInstr: 80_000, Samples: 1}
}

func TestLocalPoolRunsJobs(t *testing.T) {
	runner := harness.NewRunnerWorkers(tinyScale(), 2)
	sink := newRecSink()
	p := NewLocalPool(runner, sink, 8)
	sc := runner.NormalizeScenario(sim.SingleCore(sim.Config{Workload: "Nutch", Mechanism: sim.None}))
	if err := p.Enqueue("k1", sc); err != nil {
		t.Fatal(err)
	}
	p.Stop(false) // drain
	if got := sink.doneKeys(); len(got) != 1 || got[0] != "k1" {
		t.Fatalf("done = %v", got)
	}
	sink.mu.Lock()
	res := sink.results["k1"]
	sink.mu.Unlock()
	if len(res.Cores) != 1 || res.Cores[0].Core.Instructions == 0 {
		t.Fatalf("result empty: %+v", res)
	}
	if err := p.Enqueue("k2", sc); err != ErrClosing {
		t.Fatalf("post-stop enqueue = %v", err)
	}
}

func TestLocalPoolQueueFull(t *testing.T) {
	runner := harness.NewRunnerWorkers(tinyScale(), 1)
	sink := newRecSink()
	p := NewLocalPool(runner, sink, 1)
	defer p.Stop(true)
	sc := runner.NormalizeScenario(sim.SingleCore(sim.Config{Workload: "Oracle", Mechanism: sim.None}))
	// One job may be in flight; after the buffer fills, overflow must
	// answer ErrQueueFull rather than block.
	overflowed := false
	for i := 0; i < 4; i++ {
		if err := p.Enqueue("k", sc); err == ErrQueueFull {
			overflowed = true
			break
		} else if err != nil {
			t.Fatal(err)
		}
	}
	if !overflowed {
		t.Fatal("depth-1 queue never overflowed")
	}
}
