package dispatch

import (
	"bytes"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"
)

// FuzzCoordinatorEndpoints feeds arbitrary bodies to every dispatch
// route: malformed JSON, truncated leases and oversized garbage must
// all answer 4xx — never panic, never 5xx. A real task is seeded so
// well-formed fuzz inputs can reach the grant/renew/complete paths too.
func FuzzCoordinatorEndpoints(f *testing.F) {
	f.Add(0, []byte(`{"worker":"w1","max":1}`))
	f.Add(1, []byte(`{"worker":"w1","keys":["deadbeef"]}`))
	f.Add(2, []byte(`{"worker":"w1","key":"deadbeef","result":{"Cores":[{}]},"error":""}`))
	f.Add(2, []byte(`{"worker":"w1","key":"deadbeef","error":"boom"}`))
	f.Add(0, []byte(`{`))
	f.Add(1, []byte(``))
	f.Add(2, []byte(`{"worker":"","key":""}`))
	f.Add(0, []byte(`{"worker":"`+string(bytes.Repeat([]byte("x"), 300))+`"}`))

	paths := []string{"/v1/lease", "/v1/heartbeat", "/v1/complete"}
	f.Fuzz(func(t *testing.T, which int, body []byte) {
		c := NewCoordinator(CoordinatorConfig{
			LeaseTTL: time.Minute,
			Sink:     newRecSink(),
			Now:      newFakeClock().Now,
		})
		if err := c.Enqueue("deadbeef", scenarioOf(1)); err != nil {
			t.Fatal(err)
		}
		mux := http.NewServeMux()
		c.Register(mux)

		path := paths[((which%len(paths))+len(paths))%len(paths)]
		req := httptest.NewRequest(http.MethodPost, path, bytes.NewReader(body))
		rec := httptest.NewRecorder()
		mux.ServeHTTP(rec, req)
		if rec.Code != http.StatusOK && rec.Code != http.StatusBadRequest {
			t.Fatalf("%s: status %d for body %q (want 200 or 400)", path, rec.Code, body)
		}
	})
}
