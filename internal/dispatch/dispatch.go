// Package dispatch is the execution layer behind the HTTP simulation
// service: it decides WHERE an accepted scenario job actually runs.
//
// Two executors implement the same contract:
//
//   - LocalPool — the classic single-node path: a fixed goroutine pool
//     over the memoizing harness.Runner in this process. Zero-flag
//     shotgun-server is exactly this.
//   - Coordinator — the cluster path: jobs wait in a lease table and
//     are handed out over HTTP to shotgun-server -join worker
//     processes, each running its own harness.Runner and pushing the
//     finished record back. Leases expire (workers heartbeat to keep
//     them) and expired jobs are requeued, so a worker dying mid-
//     simulation delays its job instead of losing it.
//
// Either way, job identity is the canonical ScenarioKey, so a scenario
// is simulated at most once per cluster lifetime — and zero times when
// a persistent store already holds its record.
package dispatch

import (
	"errors"
	"fmt"
	"sync"

	"shotgun/internal/harness"
	"shotgun/internal/sim"
)

// Enqueue failure modes, distinguished so the HTTP layer can tell
// clients whether retrying this process is useful.
var (
	// ErrQueueFull rejects a job because the executor's backlog is at
	// capacity; retrying later is reasonable.
	ErrQueueFull = errors.New("dispatch: queue full")
	// ErrClosing rejects a job because the executor is shutting down;
	// clients should resubmit elsewhere (or after a restart).
	ErrClosing = errors.New("dispatch: shutting down")
	// ErrOverloaded rejects a job because the fair queue's global
	// waiting bound was passed — the shed signal the HTTP layer turns
	// into 503 + Retry-After.
	ErrOverloaded = errors.New("dispatch: overloaded, shedding load")
	// ErrQuotaExceeded rejects a job because its tenant is at its
	// outstanding-job quota; other tenants are unaffected (429).
	ErrQuotaExceeded = errors.New("dispatch: tenant quota exceeded")
)

// Sink receives job lifecycle events from an executor. The HTTP server
// implements it over its job table. Implementations must be safe for
// concurrent use and must not call back into the executor.
type Sink interface {
	// JobRunning marks a job as executing (leased, or picked up by a
	// local worker).
	JobRunning(key string)
	// JobRequeued returns a job to the queued state (its lease expired
	// before completion).
	JobRequeued(key string)
	// JobDone delivers a job's result.
	JobDone(key string, res sim.ScenarioResult)
	// JobFailed marks a job as permanently failed.
	JobFailed(key string, msg string)
}

// Executor runs scenario jobs asynchronously, reporting progress
// through the Sink it was built with.
type Executor interface {
	// Enqueue schedules one normalized scenario under its content key.
	// It never blocks: a full backlog returns ErrQueueFull, a stopping
	// executor ErrClosing. The caller guarantees at most one Enqueue
	// per key per process (the server's job table dedups first).
	Enqueue(key string, sc sim.Scenario) error
	// Stop shuts the executor down. abandon=false drains every queued
	// job first (local pool: run them; coordinator: wait for workers);
	// abandon=true finishes at most in-flight work and leaves the rest
	// queued — the signal-handler path, where a store plus resubmit
	// recovers completed work for free.
	Stop(abandon bool)
}

// localJob is one queued local simulation.
type localJob struct {
	key string
	sc  sim.Scenario
}

// LocalPool executes jobs on a fixed goroutine pool in this process —
// the single-node executor the zero-flag server uses. The pool size is
// the runner's worker count.
type LocalPool struct {
	runner *harness.Runner
	sink   Sink

	mu sync.Mutex
	// closed rejects new submissions; stopped records that the channels
	// below are closed. closed is set (under mu) no later than the
	// queue channel closes, so Enqueue — which sends while holding mu —
	// can never send on a closed channel even if an HTTP handler
	// outlives a shutdown deadline and submits after Stop began.
	closed  bool
	stopped bool

	queue chan localJob
	// quit, when closed, tells workers to exit after their in-flight
	// job instead of draining the queue (abandon vs drain).
	quit chan struct{}
	wg   sync.WaitGroup
}

// NewLocalPool builds a pool of runner.Workers() goroutines feeding the
// runner, with a queueDepth-deep backlog (values below 1 mean 4096).
func NewLocalPool(runner *harness.Runner, sink Sink, queueDepth int) *LocalPool {
	if queueDepth < 1 {
		queueDepth = 4096
	}
	p := &LocalPool{
		runner: runner,
		sink:   sink,
		queue:  make(chan localJob, queueDepth),
		quit:   make(chan struct{}),
	}
	workers := runner.Workers()
	p.wg.Add(workers)
	for i := 0; i < workers; i++ {
		go p.worker()
	}
	return p
}

// Enqueue implements Executor. The channel send is non-blocking, so
// holding mu across it is safe.
func (p *LocalPool) Enqueue(key string, sc sim.Scenario) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		return ErrClosing
	}
	select {
	case p.queue <- localJob{key: key, sc: sc}:
		return nil
	default:
		return ErrQueueFull
	}
}

// Stop implements Executor.
func (p *LocalPool) Stop(abandon bool) {
	p.mu.Lock()
	p.closed = true
	if !p.stopped {
		p.stopped = true
		if abandon {
			close(p.quit)
		}
		close(p.queue)
	}
	p.mu.Unlock()
	p.wg.Wait()
}

// worker drains the queue until it closes (or quit fires). Runner.
// RunScenario consults the in-memory memo and the persistent store
// before simulating, so a worker picking up an already-computed key
// completes instantly.
func (p *LocalPool) worker() {
	defer p.wg.Done()
	for j := range p.queue {
		select {
		case <-p.quit:
			return // abandon: leave the rest of the queue
		default:
		}
		p.sink.JobRunning(j.key)
		p.runOne(j)
	}
}

// runOne executes one job, converting a panic (e.g. a scenario that
// validated but still cannot simulate) into a failed status instead of
// killing the worker.
func (p *LocalPool) runOne(j localJob) {
	defer func() {
		if r := recover(); r != nil {
			p.sink.JobFailed(j.key, fmt.Sprint(r))
		}
	}()
	res := p.runner.RunScenario(j.sc)
	p.sink.JobDone(j.key, res)
}
