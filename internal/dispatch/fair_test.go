package dispatch

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"shotgun/internal/sim"
)

// stubExec is a hand-cranked inner executor: it records the grant
// order and completes jobs only when the test says so (or instantly
// with auto=true).
type stubExec struct {
	mu     sync.Mutex
	sink   Sink
	auto   bool
	grants []string
	open   map[string]bool
	fail   error // when set, Enqueue returns it
}

func newStubExec(sink Sink, auto bool) *stubExec {
	return &stubExec{sink: sink, auto: auto, open: map[string]bool{}}
}

func (s *stubExec) Enqueue(key string, sc sim.Scenario) error {
	s.mu.Lock()
	if s.fail != nil {
		err := s.fail
		s.mu.Unlock()
		return err
	}
	s.grants = append(s.grants, key)
	s.open[key] = true
	auto := s.auto
	s.mu.Unlock()
	if auto {
		s.complete(key)
	}
	return nil
}

func (s *stubExec) Stop(abandon bool) {}

// complete finishes one granted job.
func (s *stubExec) complete(key string) {
	s.mu.Lock()
	if !s.open[key] {
		s.mu.Unlock()
		return
	}
	delete(s.open, key)
	s.mu.Unlock()
	s.sink.JobRunning(key)
	s.sink.JobDone(key, sim.ScenarioResult{})
}

func (s *stubExec) grantList() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]string(nil), s.grants...)
}

// waitGrants blocks until the stub has granted at least n jobs.
func (s *stubExec) waitGrants(t *testing.T, n int) []string {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if g := s.grantList(); len(g) >= n {
			return g
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("timed out waiting for %d grants (have %v)", n, s.grantList())
	return nil
}

// newFairForTest wires a FairQueue over a stubExec.
func newFairForTest(cfg FairConfig, sink Sink, auto bool) (*FairQueue, *stubExec) {
	var stub *stubExec
	fq := NewFairQueue(cfg, sink, func(inner Sink) Executor {
		stub = newStubExec(inner, auto)
		return stub
	})
	return fq, stub
}

func TestFairQueueSingleSimNotStarvedBySweep(t *testing.T) {
	sink := newRecSink()
	fq, stub := newFairForTest(FairConfig{Slots: 2}, sink, false)
	defer fq.Stop(true)

	// Tenant A floods 100 jobs; the first two occupy both slots.
	for i := 0; i < 100; i++ {
		if err := fq.Submit("sweeper", fmt.Sprintf("a%03d", i), scenarioOf(1)); err != nil {
			t.Fatal(err)
		}
	}
	stub.waitGrants(t, 2)

	// Tenant B's single sim arrives while A's backlog is 98 deep.
	if err := fq.Submit("solo", "b000", scenarioOf(1)); err != nil {
		t.Fatal(err)
	}

	// Free slots one at a time; B must be granted within 2 more grants
	// (one SWRR round may tie-break to A, the next must pick B) — not
	// after A's 98 remaining jobs.
	for i := 0; i < 3; i++ {
		grants := stub.grantList()
		stub.complete(grants[i])
		got := stub.waitGrants(t, 3+i)
		for _, k := range got {
			if k == "b000" {
				return
			}
		}
	}
	t.Fatalf("tenant B's single sim not granted within bound; grants = %v", stub.grantList())
}

func TestFairQueueWeightedShares(t *testing.T) {
	sink := newRecSink()
	fq, stub := newFairForTest(FairConfig{
		Slots: 1,
		Tenants: []TenantPolicy{
			{Name: "gold", Weight: 3},
			{Name: "bronze", Weight: 1},
		},
	}, sink, true)

	// Load both backlogs before the dispatcher can drain them: with
	// auto-complete and one slot the scheduler runs one SWRR round per
	// grant, so the grant tally converges to the 3:1 weight ratio.
	for i := 0; i < 40; i++ {
		if err := fq.Submit("gold", fmt.Sprintf("g%03d", i), scenarioOf(1)); err != nil {
			t.Fatal(err)
		}
		if err := fq.Submit("bronze", fmt.Sprintf("b%03d", i), scenarioOf(1)); err != nil {
			t.Fatal(err)
		}
	}
	fq.Stop(false) // drain everything
	grants := stub.grantList()
	if len(grants) != 80 {
		t.Fatalf("granted %d jobs, want 80", len(grants))
	}
	gold := 0
	for _, k := range grants[:40] {
		if k[0] == 'g' {
			gold++
		}
	}
	// Exact SWRR over a 3:1 pair gives 30 gold in any 40-grant window
	// while both are backlogged; allow slack for jobs submitted after
	// scheduling already started.
	if gold < 24 || gold > 36 {
		t.Errorf("gold got %d of first 40 grants, want ~30 (3:1 weights)", gold)
	}
	for _, k := range grants[:8] {
		if k[0] == 'b' {
			return // bronze appears early: smooth, not bursty
		}
	}
	t.Errorf("bronze absent from first 8 grants %v — WRR not smooth", grants[:8])
}

func TestFairQueueTenantQuota(t *testing.T) {
	sink := newRecSink()
	fq, _ := newFairForTest(FairConfig{
		Slots:   1,
		Tenants: []TenantPolicy{{Name: "capped", MaxQueued: 2}},
	}, sink, false)
	defer fq.Stop(true)

	if err := fq.Submit("capped", "c1", scenarioOf(1)); err != nil {
		t.Fatal(err)
	}
	if err := fq.Submit("capped", "c2", scenarioOf(1)); err != nil {
		t.Fatal(err)
	}
	if err := fq.Submit("capped", "c3", scenarioOf(1)); !errors.Is(err, ErrQuotaExceeded) {
		t.Fatalf("third submit err = %v, want ErrQuotaExceeded", err)
	}
	// Another tenant is unaffected by capped's quota.
	if err := fq.Submit("other", "o1", scenarioOf(1)); err != nil {
		t.Fatalf("other tenant rejected: %v", err)
	}
	st := fq.Stats()
	if st.Tenants["capped"].Rejected != 1 {
		t.Errorf("capped.Rejected = %d, want 1", st.Tenants["capped"].Rejected)
	}
}

func TestFairQueueGlobalShed(t *testing.T) {
	sink := newRecSink()
	fq, stub := newFairForTest(FairConfig{Slots: 1, MaxQueue: 2}, sink, false)
	defer fq.Stop(true)

	// Occupy the single slot so subsequent submissions stay waiting.
	if err := fq.Submit("t", "k0", scenarioOf(1)); err != nil {
		t.Fatal(err)
	}
	stub.waitGrants(t, 1)
	for i := 1; i <= 2; i++ {
		if err := fq.Submit("t", fmt.Sprintf("k%d", i), scenarioOf(1)); err != nil {
			t.Fatal(err)
		}
	}
	if err := fq.Submit("t", "k3", scenarioOf(1)); !errors.Is(err, ErrOverloaded) {
		t.Fatalf("submit past MaxQueue err = %v, want ErrOverloaded", err)
	}
	if st := fq.Stats(); st.Shed != 1 {
		t.Errorf("Shed = %d, want 1", st.Shed)
	}
}

func TestFairQueueMaxInFlightIsSchedulingCapNotError(t *testing.T) {
	sink := newRecSink()
	fq, stub := newFairForTest(FairConfig{
		Slots:   4,
		Tenants: []TenantPolicy{{Name: "slow", MaxInFlight: 1}},
	}, sink, false)
	defer fq.Stop(true)

	for i := 0; i < 3; i++ {
		if err := fq.Submit("slow", fmt.Sprintf("s%d", i), scenarioOf(1)); err != nil {
			t.Fatalf("MaxInFlight must never reject: %v", err)
		}
	}
	stub.waitGrants(t, 1)
	time.Sleep(20 * time.Millisecond) // would grant more if cap ignored
	if g := stub.grantList(); len(g) != 1 {
		t.Fatalf("granted %d with MaxInFlight=1, want 1 (%v)", len(g), g)
	}
	stub.complete("s0")
	stub.waitGrants(t, 2)
}

func TestFairQueueStopDrains(t *testing.T) {
	sink := newRecSink()
	fq, _ := newFairForTest(FairConfig{Slots: 2}, sink, true)
	for i := 0; i < 20; i++ {
		if err := fq.Submit("t", fmt.Sprintf("d%02d", i), scenarioOf(1)); err != nil {
			t.Fatal(err)
		}
	}
	fq.Stop(false)
	if got := len(sink.doneKeys()); got != 20 {
		t.Fatalf("drain completed %d jobs, want 20", got)
	}
	if err := fq.Submit("t", "late", scenarioOf(1)); !errors.Is(err, ErrClosing) {
		t.Fatalf("submit after Stop err = %v, want ErrClosing", err)
	}
}

func TestFairQueueStopAbandonDropsWaiting(t *testing.T) {
	sink := newRecSink()
	fq, stub := newFairForTest(FairConfig{Slots: 1}, sink, false)
	for i := 0; i < 5; i++ {
		if err := fq.Submit("t", fmt.Sprintf("x%d", i), scenarioOf(1)); err != nil {
			t.Fatal(err)
		}
	}
	stub.waitGrants(t, 1)
	done := make(chan struct{})
	go func() { fq.Stop(true); close(done) }()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("Stop(abandon) hung with waiting jobs")
	}
	if g := stub.grantList(); len(g) != 1 {
		t.Errorf("abandon granted %d jobs, want the 1 pre-stop grant", len(g))
	}
}

func TestFairQueueInnerRejectFailsJob(t *testing.T) {
	sink := newRecSink()
	fq, stub := newFairForTest(FairConfig{Slots: 1}, sink, false)
	defer fq.Stop(true)
	stub.mu.Lock()
	stub.fail = ErrQueueFull
	stub.mu.Unlock()

	if err := fq.Submit("t", "doomed", scenarioOf(1)); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		sink.mu.Lock()
		msg, failed := sink.failed["doomed"]
		sink.mu.Unlock()
		if failed {
			if msg == "" {
				t.Error("failure message empty")
			}
			if st := fq.Stats(); st.InFlight != 0 {
				t.Errorf("InFlight = %d after inner reject, want 0", st.InFlight)
			}
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatal("inner-rejected job never reported failed")
}
