// The cluster acceptance path: a real coordinator-mode HTTP server plus
// real Workers wired through httptest, exercising lease, heartbeat,
// worker death, requeue, cross-worker dedup and warm-restart store
// serving — the distributed analogue of the server package's
// TestEndToEnd.
package dispatch_test

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"shotgun/internal/dispatch"
	"shotgun/internal/harness"
	"shotgun/internal/server"
	"shotgun/internal/sim"
	"shotgun/internal/store"
)

func clusterScale() harness.Scale {
	return harness.Scale{WarmupInstr: 60_000, MeasureInstr: 80_000, Samples: 1}
}

// fakeTime is a coarse manual clock shared by the coordinator; workers
// run on real time (heartbeat tickers), the coordinator's lease expiry
// runs on this.
type fakeTime struct {
	mu sync.Mutex
	t  time.Time
}

func (f *fakeTime) Now() time.Time {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.t
}

func (f *fakeTime) Advance(d time.Duration) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.t = f.t.Add(d)
}

// cluster is one in-process coordinator node.
type cluster struct {
	srv   *server.Server
	coord *dispatch.Coordinator
	ts    *httptest.Server
}

// newCluster boots a coordinator-mode server over st with a fake clock.
func newCluster(t *testing.T, st *store.Store, clk *fakeTime) *cluster {
	return newClusterNode(t, st, clk, false)
}

// newClusterNode is newCluster with the coordinator's role explicit: a
// standby node is wired identically (same store, own job table) but
// reports role "standby" until a worker fails over to it.
func newClusterNode(t *testing.T, st *store.Store, clk *fakeTime, standby bool) *cluster {
	t.Helper()
	var coord *dispatch.Coordinator
	srv := server.New(server.Config{
		Scale:     clusterScale(),
		ScaleName: "tiny",
		Workers:   1,
		Store:     st,
		NewExecutor: func(_ *harness.Runner, sink dispatch.Sink) dispatch.Executor {
			coord = dispatch.NewCoordinator(dispatch.CoordinatorConfig{
				LeaseTTL: time.Minute,
				Store:    st,
				Sink:     sink,
				Now:      clk.Now,
				Standby:  standby,
			})
			return coord
		},
	})
	mux := http.NewServeMux()
	mux.Handle("/", srv.Handler())
	coord.Register(mux)
	ts := httptest.NewServer(mux)
	t.Cleanup(func() { ts.Close(); srv.Shutdown() })
	return &cluster{srv: srv, coord: coord, ts: ts}
}

// startWorker runs a Worker against the cluster until ctx cancels.
func startWorker(t *testing.T, cl *cluster, id string, ctx context.Context, onLease func([]string)) chan struct{} {
	t.Helper()
	w, err := dispatch.NewWorker(dispatch.WorkerConfig{
		Coordinator: cl.ts.URL,
		ID:          id,
		Runner:      harness.NewRunnerWorkers(clusterScale(), 1),
		Poll:        10 * time.Millisecond,
		OnLease:     onLease,
	})
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		w.Run(ctx)
	}()
	return done
}

func submitScenarios(t *testing.T, base string, scs []sim.Scenario) []string {
	t.Helper()
	body, err := json.Marshal(map[string][]sim.Scenario{"scenarios": scs})
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(base+"/v1/scenarios", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit status %d", resp.StatusCode)
	}
	var out struct {
		Scenarios []struct {
			Key    string `json:"key"`
			Status string `json:"status"`
		} `json:"scenarios"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	keys := make([]string, len(out.Scenarios))
	for i, s := range out.Scenarios {
		keys[i] = s.Key
	}
	return keys
}

// scenarioStatus polls one key once.
func scenarioStatus(t *testing.T, base, key string) string {
	t.Helper()
	resp, err := http.Get(base + "/v1/scenarios/" + key)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st struct {
		Status string `json:"status"`
		Error  string `json:"error"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if st.Status == server.StatusFailed {
		t.Fatalf("job %s failed: %s", key, st.Error)
	}
	return st.Status
}

func waitDone(t *testing.T, base, key string) {
	t.Helper()
	deadline := time.Now().Add(120 * time.Second)
	for scenarioStatus(t, base, key) != server.StatusDone {
		if time.Now().After(deadline) {
			t.Fatalf("job %s never completed", key)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestClusterFailoverAndDedup is the failover acceptance test: a
// 1-coordinator, 2-worker cluster where one worker dies mid-lease. The
// dead worker's job must be requeued after lease expiry and completed
// by the survivor; no scenario may be simulated twice (store put count
// == unique keys); and a restarted cluster must serve the whole batch
// from the store without leasing anything.
func TestClusterFailoverAndDedup(t *testing.T) {
	dir := t.TempDir()
	st, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	clk := &fakeTime{t: time.Unix(1_700_000_000, 0)}
	cl := newCluster(t, st, clk)

	// Three submissions, two unique identities: the third is a per-core
	// permutation of the second, so it dedups onto the same key.
	soloCfg := sim.Config{Workload: "Nutch", Mechanism: sim.None}
	duo := sim.Scenario{Cores: []sim.Config{
		{Workload: "Nutch", Mechanism: sim.None},
		{Workload: "Streaming", Mechanism: sim.FDIP},
	}}
	duoSwapped := sim.Scenario{Cores: []sim.Config{duo.Cores[1], duo.Cores[0]}}
	keys := submitScenarios(t, cl.ts.URL, []sim.Scenario{sim.SingleCore(soloCfg), duo, duoSwapped})
	if keys[1] != keys[2] {
		t.Fatalf("permuted scenario has its own key: %s vs %s", keys[1], keys[2])
	}
	uniqueKeys := 2

	// Worker "doomed" leases the first job and dies before simulating:
	// cancel its context from inside the lease callback.
	doomedCtx, killDoomed := context.WithCancel(context.Background())
	var doomedKey string
	var leaseOnce sync.Once
	doomedDone := startWorker(t, cl, "doomed", doomedCtx, func(leased []string) {
		leaseOnce.Do(func() {
			doomedKey = leased[0]
			killDoomed()
		})
	})
	select {
	case <-doomedDone:
	case <-time.After(30 * time.Second):
		t.Fatal("doomed worker did not die")
	}
	if doomedKey == "" {
		t.Fatal("doomed worker never leased")
	}
	if s := cl.coord.Stats(); s.InFlight != 1 {
		t.Fatalf("dead worker's lease not held: %+v", s)
	}

	// The survivor picks up everything else...
	survivorCtx, stopSurvivor := context.WithCancel(context.Background())
	defer stopSurvivor()
	survivorDone := startWorker(t, cl, "survivor", survivorCtx, nil)
	for _, key := range keys {
		if key != doomedKey {
			waitDone(t, cl.ts.URL, key)
		}
	}
	// ...but not the dead worker's job, whose lease is still live.
	if got := scenarioStatus(t, cl.ts.URL, doomedKey); got == server.StatusDone {
		t.Fatal("leased job completed while its lease was held by a dead worker")
	}

	// Past the TTL, the coordinator requeues it and the survivor
	// finishes the batch.
	clk.Advance(2 * time.Minute)
	waitDone(t, cl.ts.URL, doomedKey)

	stopSurvivor()
	select {
	case <-survivorDone:
	case <-time.After(30 * time.Second):
		t.Fatal("survivor did not exit")
	}

	// No scenario was simulated twice: one store put per unique key.
	if puts := st.Stats().Puts; puts != uint64(uniqueKeys) {
		t.Fatalf("store puts = %d, want %d (a scenario was simulated twice or lost)", puts, uniqueKeys)
	}
	cs := cl.coord.Stats()
	if cs.Requeued < 1 {
		t.Fatalf("worker death never requeued: %+v", cs)
	}
	if cs.Completed != uint64(uniqueKeys) {
		t.Fatalf("completed = %d, want %d: %+v", cs.Completed, uniqueKeys, cs)
	}

	// Warm restart of the whole cluster on the same store: the batch is
	// served straight from records — born done, nothing enqueued,
	// nothing leased, no worker needed.
	st2, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	cl2 := newCluster(t, st2, clk)
	keys2 := submitScenarios(t, cl2.ts.URL, []sim.Scenario{sim.SingleCore(soloCfg), duo, duoSwapped})
	for i, key := range keys2 {
		if key != keys[i] {
			t.Fatalf("restart key %d drifted: %s vs %s", i, key, keys[i])
		}
		if got := scenarioStatus(t, cl2.ts.URL, key); got != server.StatusDone {
			t.Fatalf("restarted cluster did not serve %s from the store (status %s)", key, got)
		}
	}
	if s := cl2.coord.Stats(); s.Enqueued != 0 || s.Leased != 0 {
		t.Fatalf("restarted cluster leased work it already had: %+v", s)
	}
	if hits := st2.Stats().Hits; hits != uint64(uniqueKeys) {
		t.Fatalf("restart store hits = %d, want %d", hits, uniqueKeys)
	}
}

// TestNoLockInversionUnderChurn is the deadlock regression test for
// the server↔coordinator lock pair: submits (job-table lock → lease-
// table lock) race against lease/heartbeat/complete traffic with
// constantly expiring leases (lease-table lock → Sink → job-table
// lock if the coordinator ever emitted under its mutex). The original
// implementation deadlocked here within seconds; the fix defers every
// Sink call until the coordinator's lock is released. The test fails
// by watchdog timeout, not by assertion.
func TestNoLockInversionUnderChurn(t *testing.T) {
	st, err := store.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	clk := &fakeTime{t: time.Unix(1_700_000_000, 0)}
	cl := newCluster(t, st, clk)

	stop := make(chan struct{})
	var churn sync.WaitGroup

	// Expiry pressure: every leased job's TTL blows within ~2ms of
	// being granted, so reapLocked constantly requeues (Sink traffic
	// from inside the lease table).
	churn.Add(1)
	go func() {
		defer churn.Done()
		for {
			select {
			case <-stop:
				return
			default:
				clk.Advance(90 * time.Second)
				time.Sleep(2 * time.Millisecond)
			}
		}
	}()

	// Worker pressure: raw lease/heartbeat/complete against the wire,
	// completing whatever is granted with shape-correct results.
	churn.Add(1)
	go func() {
		defer churn.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			resp, err := http.Post(cl.ts.URL+"/v1/lease", "application/json",
				bytes.NewReader([]byte(`{"worker":"churn","max":4}`)))
			if err != nil {
				continue
			}
			var lr struct {
				Jobs []struct {
					Key      string       `json:"key"`
					Scenario sim.Scenario `json:"scenario"`
				} `json:"jobs"`
			}
			json.NewDecoder(resp.Body).Decode(&lr)
			resp.Body.Close()
			for _, jb := range lr.Jobs {
				http.Post(cl.ts.URL+"/v1/heartbeat", "application/json",
					bytes.NewReader([]byte(`{"worker":"churn","keys":["`+jb.Key+`"]}`)))
				body, _ := json.Marshal(map[string]any{
					"worker": "churn", "key": jb.Key,
					"result": sim.ScenarioResult{Cores: make([]sim.Result, len(jb.Scenario.Cores))},
				})
				if resp, err := http.Post(cl.ts.URL+"/v1/complete", "application/json", bytes.NewReader(body)); err == nil {
					resp.Body.Close()
				}
			}
		}
	}()

	// Submit pressure: 60 batches of distinct jobs from the main
	// goroutine (each submit holds the job-table lock while calling
	// Coordinator.Enqueue).
	for i := 0; i < 60; i++ {
		sc := sim.Scenario{Cores: []sim.Config{
			{Workload: "Oracle", Mechanism: sim.None, BTBEntries: 1024 + i},
		}}
		body, _ := json.Marshal(map[string][]sim.Scenario{"scenarios": {sc}})
		resp, err := http.Post(cl.ts.URL+"/v1/scenarios", "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusAccepted {
			t.Fatalf("submit %d: status %d", i, resp.StatusCode)
		}
	}

	close(stop)
	done := make(chan struct{})
	go func() { churn.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(60 * time.Second):
		t.Fatal("churn goroutines wedged: server/coordinator lock inversion")
	}
}

// TestClusterWorkerPushesRealResults: a single worker drives a leased
// multi-core scenario end to end and the server's poll endpoint serves
// the per-core results the worker actually simulated.
func TestClusterWorkerPushesRealResults(t *testing.T) {
	st, err := store.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	clk := &fakeTime{t: time.Unix(1_700_000_000, 0)}
	cl := newCluster(t, st, clk)

	duo := sim.Scenario{Cores: []sim.Config{
		{Workload: "Nutch", Mechanism: sim.Shotgun},
		{Workload: "Nutch", Mechanism: sim.None},
	}}
	keys := submitScenarios(t, cl.ts.URL, []sim.Scenario{duo})

	ctx, stop := context.WithCancel(context.Background())
	defer stop()
	startWorker(t, cl, "w1", ctx, nil)
	waitDone(t, cl.ts.URL, keys[0])

	resp, err := http.Get(cl.ts.URL + "/v1/scenarios/" + keys[0])
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var got struct {
		Result *sim.ScenarioResult `json:"result"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&got); err != nil {
		t.Fatal(err)
	}
	if got.Result == nil || len(got.Result.Cores) != 2 {
		t.Fatalf("result shape wrong: %+v", got.Result)
	}
	for i, res := range got.Result.Cores {
		if res.Core.Instructions == 0 {
			t.Fatalf("core %d measured nothing", i)
		}
	}
	// The worker's record is in the coordinator's store.
	if st.Stats().Puts != 1 {
		t.Fatalf("store puts = %d, want 1", st.Stats().Puts)
	}
}
