package dispatch

import (
	"sync"

	"shotgun/internal/sim"
)

// TenantPolicy is one tenant's share of the farm: its scheduling
// weight and its quotas. The zero value means "default share, no
// quotas".
type TenantPolicy struct {
	// Name identifies the tenant ("" is the anonymous tenant used when
	// auth is off).
	Name string
	// Weight is the tenant's share in the weighted round-robin (values
	// below 1 schedule as 1). A weight-3 tenant is granted three slots
	// for every one a weight-1 tenant gets — when both have work
	// waiting; an idle tenant's share flows to the busy ones.
	Weight int
	// MaxQueued bounds the tenant's outstanding jobs (waiting +
	// in-flight). 0 means unlimited. Exceeding it fails Submit with
	// ErrQuotaExceeded — the 429 path.
	MaxQueued int
	// MaxInFlight bounds how many of the tenant's jobs may be resident
	// in the inner executor at once. 0 means unlimited. This is a
	// scheduling cap, never an error: excess work just waits.
	MaxInFlight int
}

// fairJob is one waiting submission.
type fairJob struct {
	key string
	sc  sim.Scenario
}

// tenantState is a tenant's live scheduling state.
type tenantState struct {
	policy  TenantPolicy
	current int // smooth-WRR credit
	fifo    []fairJob
	// inflight counts this tenant's jobs resident in the inner
	// executor (dispatched, not yet done/failed).
	inflight  int
	completed uint64
	failed    uint64
	rejected  uint64
}

// TenantStats is one tenant's row in a FairStats snapshot.
type TenantStats struct {
	// Waiting jobs are held in the fair queue, not yet dispatched.
	Waiting int
	// InFlight jobs are resident in the inner executor.
	InFlight int
	// Completed and Failed count terminal outcomes.
	Completed uint64
	Failed    uint64
	// Rejected counts submissions refused by quota or shed.
	Rejected uint64
}

// FairStats is a point-in-time snapshot for /metrics.
type FairStats struct {
	// Waiting and InFlight are the global totals; Slots is the
	// residency bound.
	Waiting  int
	InFlight int
	Slots    int
	// Shed counts submissions refused by the global waiting bound.
	Shed uint64
	// Tenants maps tenant name to its row (the anonymous tenant is "").
	Tenants map[string]TenantStats
}

// FairConfig configures a FairQueue.
type FairConfig struct {
	// Slots bounds how many jobs are resident in the inner executor at
	// once (values below 1 mean 1). Keep it at or below the inner
	// queue depth; the fair queue refills a slot the moment a job
	// finishes.
	Slots int
	// MaxQueue bounds the total waiting jobs across all tenants; past
	// it Submit sheds with ErrOverloaded (503 + Retry-After). 0 means
	// unlimited.
	MaxQueue int
	// Tenants pre-registers known tenants so their rows exist in Stats
	// from the start. Unknown tenants are admitted lazily under
	// Default.
	Tenants []TenantPolicy
	// Default is the policy applied to tenants not listed in Tenants
	// (its Name field is ignored).
	Default TenantPolicy
}

// FairQueue is an Executor that multiplexes many tenants onto one
// inner executor with smooth weighted round-robin, so one tenant's
// 4096-scenario sweep cannot starve another tenant's single sim.
//
// Only Slots jobs are resident in the inner executor at a time; the
// rest wait in per-tenant FIFOs and are dispatched one per free slot,
// tenants picked by smooth WRR among those with work waiting (and
// in-flight headroom). With a 512-job sweep queued by tenant A and a
// single sim arriving from tenant B, B's job is dispatched on the next
// free slot — bounded by Slots, not by A's backlog.
//
// FairQueue is the Sink of its inner executor and forwards every event
// to the outer sink — always after releasing its own lock, preserving
// the repo-wide lock order (server → fair → inner) that keeps HTTP
// submits and executor callbacks deadlock-free.
type FairQueue struct {
	inner   Executor
	sink    Sink
	slots   int
	maxQ    int
	defPol  TenantPolicy
	done    chan struct{} // dispatcher exited
	mu      sync.Mutex
	cond    *sync.Cond
	tenants map[string]*tenantState
	order   []string          // stable SWRR iteration order
	owner   map[string]string // resident key -> tenant
	waiting int
	resid   int
	shed    uint64
	closing bool // no new submissions
	abandon bool // dispatcher exits without draining FIFOs
}

// NewFairQueue builds the fair-share layer. newInner builds the inner
// executor (LocalPool or Coordinator) with the FairQueue as its sink;
// events flow inner → fair → sink.
func NewFairQueue(cfg FairConfig, sink Sink, newInner func(sink Sink) Executor) *FairQueue {
	if cfg.Slots < 1 {
		cfg.Slots = 1
	}
	f := &FairQueue{
		sink:    sink,
		slots:   cfg.Slots,
		maxQ:    cfg.MaxQueue,
		defPol:  cfg.Default,
		done:    make(chan struct{}),
		tenants: make(map[string]*tenantState),
		owner:   make(map[string]string),
	}
	f.cond = sync.NewCond(&f.mu)
	for _, p := range cfg.Tenants {
		if _, dup := f.tenants[p.Name]; dup {
			continue
		}
		f.tenants[p.Name] = &tenantState{policy: p}
		f.order = append(f.order, p.Name)
	}
	f.inner = newInner(f)
	go f.dispatch()
	return f
}

// Enqueue implements Executor, submitting under the anonymous tenant.
func (f *FairQueue) Enqueue(key string, sc sim.Scenario) error {
	return f.Submit("", key, sc)
}

// Submit queues one job for a tenant. It never blocks: a stopping
// queue returns ErrClosing, a full global queue ErrOverloaded, and a
// tenant at its MaxQueued quota ErrQuotaExceeded. The caller dedups
// keys first (same contract as Executor.Enqueue).
func (f *FairQueue) Submit(tenant, key string, sc sim.Scenario) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.closing {
		return ErrClosing
	}
	ts := f.tenantLocked(tenant)
	if f.maxQ > 0 && f.waiting >= f.maxQ {
		f.shed++
		ts.rejected++
		return ErrOverloaded
	}
	if q := ts.policy.MaxQueued; q > 0 && len(ts.fifo)+ts.inflight >= q {
		ts.rejected++
		return ErrQuotaExceeded
	}
	ts.fifo = append(ts.fifo, fairJob{key: key, sc: sc})
	f.waiting++
	f.cond.Broadcast()
	return nil
}

// Stop implements Executor. abandon=false dispatches every waiting job
// into the inner executor and drains it; abandon=true drops the FIFOs
// (the server's job table handles the abandoned statuses) and stops
// the inner executor after in-flight work only.
func (f *FairQueue) Stop(abandon bool) {
	f.mu.Lock()
	f.closing = true
	if abandon {
		f.abandon = true
		for _, ts := range f.tenants {
			f.waiting -= len(ts.fifo)
			ts.fifo = nil
		}
	}
	f.cond.Broadcast()
	f.mu.Unlock()
	<-f.done
	f.inner.Stop(abandon)
}

// Stats snapshots the queue for the metrics endpoint.
func (f *FairQueue) Stats() FairStats {
	f.mu.Lock()
	defer f.mu.Unlock()
	st := FairStats{
		Waiting:  f.waiting,
		InFlight: f.resid,
		Slots:    f.slots,
		Shed:     f.shed,
		Tenants:  make(map[string]TenantStats, len(f.tenants)),
	}
	for name, ts := range f.tenants {
		st.Tenants[name] = TenantStats{
			Waiting:   len(ts.fifo),
			InFlight:  ts.inflight,
			Completed: ts.completed,
			Failed:    ts.failed,
			Rejected:  ts.rejected,
		}
	}
	return st
}

// JobRunning implements Sink (forwarded; residency is unchanged).
func (f *FairQueue) JobRunning(key string) { f.sink.JobRunning(key) }

// JobRequeued implements Sink (forwarded; the job stays resident in
// the inner executor, waiting for another lease).
func (f *FairQueue) JobRequeued(key string) { f.sink.JobRequeued(key) }

// JobDone implements Sink: free the slot, then forward.
func (f *FairQueue) JobDone(key string, res sim.ScenarioResult) {
	f.release(key, true)
	f.sink.JobDone(key, res)
}

// JobFailed implements Sink: free the slot, then forward.
func (f *FairQueue) JobFailed(key string, msg string) {
	f.release(key, false)
	f.sink.JobFailed(key, msg)
}

// release returns a resident job's slot and wakes the dispatcher. Sink
// forwarding happens in the callers, after the lock is gone.
func (f *FairQueue) release(key string, ok bool) {
	f.mu.Lock()
	if tenant, resident := f.owner[key]; resident {
		delete(f.owner, key)
		ts := f.tenants[tenant]
		ts.inflight--
		f.resid--
		if ok {
			ts.completed++
		} else {
			ts.failed++
		}
		f.cond.Broadcast()
	}
	f.mu.Unlock()
}

// tenantLocked returns (creating under the default policy if needed)
// the tenant's state. Caller holds mu.
func (f *FairQueue) tenantLocked(name string) *tenantState {
	if ts, ok := f.tenants[name]; ok {
		return ts
	}
	pol := f.defPol
	pol.Name = name
	ts := &tenantState{policy: pol}
	f.tenants[name] = ts
	f.order = append(f.order, name)
	return ts
}

// pickLocked runs one round of smooth weighted round-robin over the
// tenants that are eligible right now (work waiting, in-flight
// headroom): every eligible tenant gains its weight in credit, the
// richest is picked and pays the round's total back. Over time each
// busy tenant's grant rate converges to its weight share, and the
// interleaving is smooth (no weight-sized bursts). Caller holds mu and
// has already checked for a free slot.
func (f *FairQueue) pickLocked() *tenantState {
	var (
		best  *tenantState
		total int
	)
	for _, name := range f.order {
		ts := f.tenants[name]
		if len(ts.fifo) == 0 {
			continue
		}
		if m := ts.policy.MaxInFlight; m > 0 && ts.inflight >= m {
			continue
		}
		w := ts.policy.Weight
		if w < 1 {
			w = 1
		}
		total += w
		ts.current += w
		if best == nil || ts.current > best.current {
			best = ts
		}
	}
	if best != nil {
		best.current -= total
	}
	return best
}

// dispatch is the scheduling loop: whenever a slot is free and a
// tenant is eligible, move that tenant's oldest job into the inner
// executor. Runs until Stop; abandon exits immediately, drain exits
// once every FIFO has been dispatched.
func (f *FairQueue) dispatch() {
	defer close(f.done)
	for {
		f.mu.Lock()
		var (
			job    fairJob
			tenant string
		)
		for {
			if f.abandon {
				f.mu.Unlock()
				return
			}
			if f.resid < f.slots {
				if ts := f.pickLocked(); ts != nil {
					job, ts.fifo = ts.fifo[0], ts.fifo[1:]
					tenant = ts.policy.Name
					f.waiting--
					ts.inflight++
					f.resid++
					f.owner[job.key] = tenant
					break
				}
			}
			if f.closing && f.waiting == 0 {
				f.mu.Unlock()
				return
			}
			f.cond.Wait()
		}
		f.mu.Unlock()
		// The inner Enqueue runs outside mu: executors may emit sink
		// events from their own goroutines at any time, and those
		// callbacks re-enter release().
		if err := f.inner.Enqueue(job.key, job.sc); err != nil {
			f.release(job.key, false)
			f.sink.JobFailed(job.key, "dispatch: "+err.Error())
		}
	}
}
