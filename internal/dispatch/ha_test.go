// Coordinator HA acceptance: a primary and a warm-standby coordinator
// share one result store; the primary is killed mid-sweep and the
// standby must finish the batch from store state plus worker
// re-registration — with every scenario simulated exactly once.
package dispatch_test

import (
	"context"
	"sync"
	"testing"
	"time"

	"shotgun/internal/dispatch"
	"shotgun/internal/harness"
	"shotgun/internal/sim"
	"shotgun/internal/store"
)

// startWorkerHA runs a Worker that knows the whole coordinator fleet
// and fails over on its own when the active one dies.
func startWorkerHA(t *testing.T, urls []string, id string, ctx context.Context, onLease func([]string)) chan struct{} {
	t.Helper()
	w, err := dispatch.NewWorker(dispatch.WorkerConfig{
		Coordinators: urls,
		ID:           id,
		Runner:       harness.NewRunnerWorkers(clusterScale(), 1),
		Poll:         10 * time.Millisecond,
		OnLease:      onLease,
	})
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		w.Run(ctx)
	}()
	return done
}

// TestClusterCoordinatorHAFailover is the standby-takeover acceptance
// test. A sweep is submitted to the primary and resubmitted to the
// standby (the operator's recovery move — the store dedups everything
// already finished, the lease table dedups everything in flight). The
// worker leases its first job from the primary, which dies before the
// simulation starts. The worker must fail over: it registers its
// in-flight lease with the standby — flipping it active and adopting
// the lease rather than twinning the resubmitted copy — and the sweep
// completes with exactly one store put per unique key.
func TestClusterCoordinatorHAFailover(t *testing.T) {
	dir := t.TempDir()
	st, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	clk := &fakeTime{t: time.Unix(1_700_000_000, 0)}
	prim := newClusterNode(t, st, clk, false)
	stby := newClusterNode(t, st, clk, true)
	if got := stby.coord.Stats().Role; got != "standby" {
		t.Fatalf("standby role before takeover = %q, want standby", got)
	}
	if got := prim.coord.Stats().Role; got != "active" {
		t.Fatalf("primary role = %q, want active", got)
	}

	scs := []sim.Scenario{
		sim.SingleCore(sim.Config{Workload: "Nutch", Mechanism: sim.None}),
		sim.SingleCore(sim.Config{Workload: "Oracle", Mechanism: sim.FDIP}),
		sim.SingleCore(sim.Config{Workload: "Streaming", Mechanism: sim.None}),
	}
	keys := submitScenarios(t, prim.ts.URL, scs)
	// Resubmit to the standby before anything runs: its table holds the
	// whole sweep as pending, and submissions alone must not flip it
	// active (only worker traffic is a takeover signal).
	keys2 := submitScenarios(t, stby.ts.URL, scs)
	for i := range keys {
		if keys[i] != keys2[i] {
			t.Fatalf("key %d drifted across coordinators: %s vs %s", i, keys[i], keys2[i])
		}
	}
	if got := stby.coord.Stats().Role; got != "standby" {
		t.Fatalf("resubmission flipped the standby active (role %q)", got)
	}

	// One worker, fleet-aware. Its first lease comes from the primary;
	// the kill fires from inside the lease callback, before the
	// simulation starts, so the job is in flight with no live owner.
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var killOnce sync.Once
	var killedKey string
	wdone := startWorkerHA(t, []string{prim.ts.URL, stby.ts.URL}, "w1", ctx, func(leased []string) {
		killOnce.Do(func() {
			killedKey = leased[0]
			prim.ts.Close()
		})
	})

	// The whole sweep — including the job leased from the dead primary
	// — must complete against the standby.
	for _, key := range keys {
		waitDone(t, stby.ts.URL, key)
	}
	cancel()
	select {
	case <-wdone:
	case <-time.After(30 * time.Second):
		t.Fatal("worker did not exit")
	}
	if killedKey == "" {
		t.Fatal("worker never leased from the primary")
	}

	// Exactly-once: one store put per unique key, despite the job that
	// was in flight when its coordinator died.
	if puts := st.Stats().Puts; puts != uint64(len(keys)) {
		t.Fatalf("store puts = %d, want %d (a scenario was simulated twice or lost)", puts, len(keys))
	}
	cs := stby.coord.Stats()
	if cs.Role != "active" {
		t.Fatalf("standby never took over: role %q", cs.Role)
	}
	if cs.Adopted != 1 {
		t.Fatalf("adopted leases = %d, want 1 (the job in flight at the kill): %+v", cs.Adopted, cs)
	}
	if cs.Completed != uint64(len(keys)) {
		t.Fatalf("standby completed = %d, want %d: %+v", cs.Completed, len(keys), cs)
	}
	// The adopted job was never re-leased — only the two jobs the
	// primary hadn't granted yet went through the standby's Lease path.
	if cs.Leased != uint64(len(keys)-1) {
		t.Fatalf("standby leased = %d, want %d: %+v", cs.Leased, len(keys)-1, cs)
	}
}
