package dispatch

import (
	"context"
	"fmt"
	"net/http"
	"os"
	"sync"
	"time"

	"shotgun/internal/client"
	"shotgun/internal/harness"
	"shotgun/internal/sim"
)

// WorkerConfig parameterizes a Worker.
type WorkerConfig struct {
	// Coordinator is the coordinator's base URL (required), e.g.
	// "http://10.0.0.1:8080".
	Coordinator string
	// ID names this worker in leases; default "<hostname>-<pid>".
	ID string
	// Runner executes leased scenarios (required). Its memo still
	// dedups re-leases of a key within this process.
	Runner *harness.Runner
	// Client issues the HTTP calls (default: 30s-timeout client).
	Client *http.Client
	// APIKey, when set, authenticates against a coordinator running
	// with tenancy enabled.
	APIKey string
	// Poll is the idle wait between empty leases (default 500ms).
	Poll time.Duration
	// Concurrency is how many leased jobs simulate at once (default 1).
	Concurrency int
	// OnLease, when non-nil, observes every granted lease before
	// simulation starts (tests use it to kill a worker mid-lease).
	OnLease func(keys []string)
	// Logf, when non-nil, receives progress lines.
	Logf func(format string, args ...any)
}

// Worker is the -join side of the cluster: an endless lease → simulate
// → push-back loop over the local harness.Runner. It holds no state the
// coordinator cannot reconstruct — killing a worker at any point loses
// at most the work in flight, which the lease TTL returns to the queue.
//
// All coordinator traffic goes through one internal/client.Client:
// polls (lease, heartbeat) never retry — the loop itself is the retry —
// while completions retry twice, since a lost completion costs a whole
// re-simulation after lease expiry.
type Worker struct {
	cfg  WorkerConfig
	poll *client.Client // lease + heartbeat: no retry, the loop polls
	push *client.Client // complete: retried, 4xx gives up immediately
}

// NewWorker validates the config and applies defaults.
func NewWorker(cfg WorkerConfig) (*Worker, error) {
	if cfg.Coordinator == "" {
		return nil, fmt.Errorf("dispatch: worker needs a coordinator URL")
	}
	if cfg.Runner == nil {
		return nil, fmt.Errorf("dispatch: worker needs a runner")
	}
	if cfg.ID == "" {
		host, err := os.Hostname()
		if err != nil {
			host = "worker"
		}
		cfg.ID = fmt.Sprintf("%s-%d", host, os.Getpid())
	}
	if len(cfg.ID) > maxWorkerID {
		return nil, fmt.Errorf("dispatch: worker id longer than %d bytes", maxWorkerID)
	}
	if cfg.Client == nil {
		cfg.Client = &http.Client{Timeout: 30 * time.Second}
	}
	if cfg.Poll <= 0 {
		cfg.Poll = 500 * time.Millisecond
	}
	if cfg.Concurrency < 1 {
		cfg.Concurrency = 1
	}
	if cfg.Logf == nil {
		cfg.Logf = func(string, ...any) {}
	}
	opts := []client.Option{client.WithHTTPClient(cfg.Client), client.WithAPIKey(cfg.APIKey)}
	return &Worker{
		cfg:  cfg,
		poll: client.New(cfg.Coordinator, append(opts, client.WithRetries(0))...),
		push: client.New(cfg.Coordinator, append(opts, client.WithRetries(2))...),
	}, nil
}

// ID returns the worker's lease name.
func (w *Worker) ID() string { return w.cfg.ID }

// Run leases and executes jobs until ctx is canceled. In-flight
// simulations finish and push their results (their completions use
// their own timeouts, not ctx) before Run returns, so a graceful
// worker shutdown never wastes compute.
func (w *Worker) Run(ctx context.Context) error {
	slots := make(chan struct{}, w.cfg.Concurrency)
	for i := 0; i < w.cfg.Concurrency; i++ {
		slots <- struct{}{}
	}
	var wg sync.WaitGroup
	defer wg.Wait()
	w.cfg.Logf("worker %s: joined %s", w.cfg.ID, w.cfg.Coordinator)
	for {
		select {
		case <-ctx.Done():
			return nil
		case <-slots:
		}
		jobs, ttl, err := w.poll.Lease(ctx, w.cfg.ID, 1)
		if err != nil {
			slots <- struct{}{}
			if ctx.Err() != nil {
				return nil
			}
			w.cfg.Logf("worker %s: lease: %v", w.cfg.ID, err)
			if !w.sleep(ctx, w.cfg.Poll) {
				return nil
			}
			continue
		}
		if len(jobs) == 0 {
			slots <- struct{}{}
			if !w.sleep(ctx, w.cfg.Poll) {
				return nil
			}
			continue
		}
		if w.cfg.OnLease != nil {
			w.cfg.OnLease([]string{jobs[0].Key})
		}
		if ctx.Err() != nil {
			// Killed between lease and simulation: abandon the lease
			// (the TTL will requeue it) rather than start work the
			// shutdown would only have to wait for.
			slots <- struct{}{}
			return nil
		}
		jb := jobs[0]
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer func() { slots <- struct{}{} }()
			w.runJob(jb, ttl)
		}()
	}
}

// runJob simulates one leased scenario, heartbeating at a third of the
// TTL, and pushes the record (or the panic message) back.
func (w *Worker) runJob(jb LeasedJob, ttl time.Duration) {
	stop := make(chan struct{})
	defer close(stop)
	go w.heartbeatLoop(jb.Key, ttl, stop)

	res, errMsg := w.simulate(jb.Scenario)
	if errMsg != "" {
		w.cfg.Logf("worker %s: job %s failed: %s", w.cfg.ID, jb.Key, errMsg)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	if _, err := w.push.Complete(ctx, w.cfg.ID, jb.Key, res, errMsg); err != nil {
		// The lease will expire and another worker will redo the job;
		// nothing else to do from here.
		w.cfg.Logf("worker %s: push %s back: %v", w.cfg.ID, jb.Key, err)
		return
	}
	w.cfg.Logf("worker %s: completed %s", w.cfg.ID, jb.Key)
}

// simulate runs the scenario exactly as leased (the coordinator pinned
// its scale already), converting panics into an error message.
func (w *Worker) simulate(sc sim.Scenario) (res sim.ScenarioResult, errMsg string) {
	defer func() {
		if r := recover(); r != nil {
			errMsg = fmt.Sprint(r)
		}
	}()
	return w.cfg.Runner.RunScenarioExact(sc), ""
}

// heartbeatLoop renews the lease until stop closes. A heartbeat that
// reports the key lost stops early: the coordinator gave the job away,
// so renewing is pointless (the eventual complete is still pushed —
// whoever finishes first wins, the other sees accepted=false).
func (w *Worker) heartbeatLoop(key string, ttl time.Duration, stop <-chan struct{}) {
	period := ttl / 3
	if period < time.Millisecond {
		period = time.Millisecond
	}
	tick := time.NewTicker(period)
	defer tick.Stop()
	for {
		select {
		case <-stop:
			return
		case <-tick.C:
			lost, err := w.poll.Heartbeat(context.Background(), w.cfg.ID, []string{key})
			if err != nil {
				w.cfg.Logf("worker %s: heartbeat %s: %v", w.cfg.ID, key, err)
				continue
			}
			if len(lost) > 0 {
				w.cfg.Logf("worker %s: lease on %s lost", w.cfg.ID, key)
				return
			}
		}
	}
}

// sleep waits d or until ctx cancels, reporting whether to continue.
func (w *Worker) sleep(ctx context.Context, d time.Duration) bool {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return false
	case <-t.C:
		return true
	}
}
