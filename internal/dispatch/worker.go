package dispatch

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"os"
	"sync"
	"time"

	"shotgun/internal/client"
	"shotgun/internal/harness"
	"shotgun/internal/sim"
)

// WorkerConfig parameterizes a Worker.
type WorkerConfig struct {
	// Coordinator is the coordinator's base URL (required unless
	// Coordinators is set), e.g. "http://10.0.0.1:8080".
	Coordinator string
	// Coordinators, when set, is the full failover list — primary
	// first, then standbys in preference order. The worker talks to one
	// at a time and fails over down the list (wrapping) when the active
	// coordinator stops answering, re-registering its in-flight leases
	// with the successor BEFORE routing traffic to it so a takeover
	// never re-leases work this worker is already simulating.
	Coordinators []string
	// ID names this worker in leases; default "<hostname>-<pid>".
	ID string
	// Runner executes leased scenarios (required). Its memo still
	// dedups re-leases of a key within this process.
	Runner *harness.Runner
	// Client issues the HTTP calls (default: 30s-timeout client).
	Client *http.Client
	// APIKey, when set, authenticates against a coordinator running
	// with tenancy enabled.
	APIKey string
	// Poll is the idle wait between empty leases (default 500ms).
	Poll time.Duration
	// Concurrency is how many leased jobs simulate at once (default 1).
	Concurrency int
	// OnLease, when non-nil, observes every granted lease before
	// simulation starts (tests use it to kill a worker — or a
	// coordinator — mid-lease).
	OnLease func(keys []string)
	// Logf, when non-nil, receives progress lines.
	Logf func(format string, args ...any)
}

// endpoint is one coordinator the worker can talk to.
type endpoint struct {
	url  string
	poll *client.Client // lease + heartbeat: no retry, the loop polls
	push *client.Client // complete/register: retried, 4xx gives up immediately
}

// Worker is the -join side of the cluster: an endless lease → simulate
// → push-back loop over the local harness.Runner. It holds no state the
// coordinator cannot reconstruct — killing a worker at any point loses
// at most the work in flight, which the lease TTL returns to the queue.
//
// The inverse failure — the COORDINATOR dying under a live worker — is
// what the failover list covers: the worker keeps an inflight map of
// the leases it holds, and when the active coordinator stops answering
// it registers that map with the next coordinator on the list before
// sending it any other traffic. The standby adopts the leases, so the
// in-flight simulations complete exactly once instead of being
// re-leased and redone.
//
// All coordinator traffic goes through one internal/client.Client per
// endpoint: polls (lease, heartbeat) never retry — the loop itself is
// the retry — while completions retry twice, since a lost completion
// costs a whole re-simulation after lease expiry.
type Worker struct {
	cfg WorkerConfig
	eps []endpoint

	mu       sync.Mutex
	active   int // index into eps; changes only under mu
	inflight map[string]LeasedJob
}

// NewWorker validates the config and applies defaults.
func NewWorker(cfg WorkerConfig) (*Worker, error) {
	urls := cfg.Coordinators
	if len(urls) == 0 && cfg.Coordinator != "" {
		urls = []string{cfg.Coordinator}
	}
	if len(urls) == 0 {
		return nil, fmt.Errorf("dispatch: worker needs a coordinator URL")
	}
	if cfg.Runner == nil {
		return nil, fmt.Errorf("dispatch: worker needs a runner")
	}
	if cfg.ID == "" {
		host, err := os.Hostname()
		if err != nil {
			host = "worker"
		}
		cfg.ID = fmt.Sprintf("%s-%d", host, os.Getpid())
	}
	if len(cfg.ID) > maxWorkerID {
		return nil, fmt.Errorf("dispatch: worker id longer than %d bytes", maxWorkerID)
	}
	if cfg.Client == nil {
		cfg.Client = &http.Client{Timeout: 30 * time.Second}
	}
	if cfg.Poll <= 0 {
		cfg.Poll = 500 * time.Millisecond
	}
	if cfg.Concurrency < 1 {
		cfg.Concurrency = 1
	}
	if cfg.Logf == nil {
		cfg.Logf = func(string, ...any) {}
	}
	opts := []client.Option{client.WithHTTPClient(cfg.Client), client.WithAPIKey(cfg.APIKey)}
	w := &Worker{cfg: cfg, inflight: make(map[string]LeasedJob)}
	for _, u := range urls {
		w.eps = append(w.eps, endpoint{
			url:  u,
			poll: client.New(u, append(opts, client.WithRetries(0))...),
			push: client.New(u, append(opts, client.WithRetries(2))...),
		})
	}
	return w, nil
}

// ID returns the worker's lease name.
func (w *Worker) ID() string { return w.cfg.ID }

// Coordinator returns the URL of the coordinator currently receiving
// this worker's traffic.
func (w *Worker) Coordinator() string {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.eps[w.active].url
}

// current returns the active endpoint and its index.
func (w *Worker) current() (endpoint, int) {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.eps[w.active], w.active
}

// coordinatorDown classifies an error as "the coordinator is gone"
// (transport failure or 5xx) as opposed to a deterministic rejection a
// different coordinator would repeat.
func coordinatorDown(err error) bool {
	var ae *client.APIError
	if errors.As(err, &ae) {
		return ae.Status >= 500
	}
	return true // transport error: connection refused, timeout, ...
}

// failover moves traffic to the next answering coordinator on the
// list, re-registering this worker's in-flight leases with it first.
// from is the endpoint index the caller saw fail; if another goroutine
// already moved on, failover is a no-op. Reports whether an endpoint
// is active (possibly a new one).
func (w *Worker) failover(from int) bool {
	if len(w.eps) == 1 {
		return false
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.active != from {
		return true // a concurrent call already failed over
	}
	jobs := make([]LeasedJob, 0, len(w.inflight))
	for _, jb := range w.inflight {
		jobs = append(jobs, jb)
	}
	for i := 1; i < len(w.eps); i++ {
		cand := (from + i) % len(w.eps)
		ctx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
		_, lost, err := w.eps[cand].push.Register(ctx, w.cfg.ID, jobs)
		cancel()
		if err != nil {
			w.cfg.Logf("worker %s: coordinator %s unreachable: %v", w.cfg.ID, w.eps[cand].url, err)
			continue
		}
		w.active = cand
		w.cfg.Logf("worker %s: failed over to %s (%d leases re-registered, %d refused)",
			w.cfg.ID, w.eps[cand].url, len(jobs)-len(lost), len(lost))
		return true
	}
	w.cfg.Logf("worker %s: no coordinator answering; staying on %s", w.cfg.ID, w.eps[from].url)
	return false
}

// track/untrack maintain the inflight map the failover handshake
// re-registers.
func (w *Worker) track(jb LeasedJob) {
	w.mu.Lock()
	w.inflight[jb.Key] = jb
	w.mu.Unlock()
}

func (w *Worker) untrack(key string) {
	w.mu.Lock()
	delete(w.inflight, key)
	w.mu.Unlock()
}

// lease, heartbeat and complete wrap the client calls with the
// failover policy: a call that fails because the coordinator is down
// triggers failover and returns the error — the caller's own loop (or
// one explicit retry, for completions) takes it from there.

func (w *Worker) lease(ctx context.Context, max int) ([]LeasedJob, time.Duration, error) {
	ep, idx := w.current()
	jobs, ttl, err := ep.poll.Lease(ctx, w.cfg.ID, max)
	if err != nil && ctx.Err() == nil && coordinatorDown(err) {
		w.failover(idx)
	}
	return jobs, ttl, err
}

func (w *Worker) heartbeat(ctx context.Context, keys []string) ([]string, error) {
	ep, idx := w.current()
	lost, err := ep.poll.Heartbeat(ctx, w.cfg.ID, keys)
	if err != nil && ctx.Err() == nil && coordinatorDown(err) {
		w.failover(idx)
	}
	return lost, err
}

func (w *Worker) complete(ctx context.Context, key string, res sim.ScenarioResult, errMsg string) (bool, error) {
	ep, idx := w.current()
	ok, err := ep.push.Complete(ctx, w.cfg.ID, key, res, errMsg)
	if err != nil && ctx.Err() == nil && coordinatorDown(err) {
		if w.failover(idx) {
			// The standby adopted this lease during registration; push
			// the finished result there rather than letting the lease
			// expire and the whole simulation be redone.
			ep, _ = w.current()
			return ep.push.Complete(ctx, w.cfg.ID, key, res, errMsg)
		}
	}
	return ok, err
}

// Run leases and executes jobs until ctx is canceled. In-flight
// simulations finish and push their results (their completions use
// their own timeouts, not ctx) before Run returns, so a graceful
// worker shutdown never wastes compute.
func (w *Worker) Run(ctx context.Context) error {
	slots := make(chan struct{}, w.cfg.Concurrency)
	for i := 0; i < w.cfg.Concurrency; i++ {
		slots <- struct{}{}
	}
	var wg sync.WaitGroup
	defer wg.Wait()
	w.cfg.Logf("worker %s: joined %s", w.cfg.ID, w.Coordinator())
	for {
		select {
		case <-ctx.Done():
			return nil
		case <-slots:
		}
		jobs, ttl, err := w.lease(ctx, 1)
		if err != nil {
			slots <- struct{}{}
			if ctx.Err() != nil {
				return nil
			}
			w.cfg.Logf("worker %s: lease: %v", w.cfg.ID, err)
			if !w.sleep(ctx, w.cfg.Poll) {
				return nil
			}
			continue
		}
		if len(jobs) == 0 {
			slots <- struct{}{}
			if !w.sleep(ctx, w.cfg.Poll) {
				return nil
			}
			continue
		}
		jb := jobs[0]
		w.track(jb)
		if w.cfg.OnLease != nil {
			w.cfg.OnLease([]string{jb.Key})
		}
		if ctx.Err() != nil {
			// Killed between lease and simulation: abandon the lease
			// (the TTL will requeue it) rather than start work the
			// shutdown would only have to wait for.
			w.untrack(jb.Key)
			slots <- struct{}{}
			return nil
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer func() { slots <- struct{}{} }()
			w.runJob(jb, ttl)
		}()
	}
}

// runJob simulates one leased scenario, heartbeating at a third of the
// TTL, and pushes the record (or the panic message) back.
func (w *Worker) runJob(jb LeasedJob, ttl time.Duration) {
	defer w.untrack(jb.Key)
	stop := make(chan struct{})
	defer close(stop)
	go w.heartbeatLoop(jb.Key, ttl, stop)

	res, errMsg := w.simulate(jb.Scenario)
	if errMsg != "" {
		w.cfg.Logf("worker %s: job %s failed: %s", w.cfg.ID, jb.Key, errMsg)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	if _, err := w.complete(ctx, jb.Key, res, errMsg); err != nil {
		// The lease will expire and another worker will redo the job;
		// nothing else to do from here.
		w.cfg.Logf("worker %s: push %s back: %v", w.cfg.ID, jb.Key, err)
		return
	}
	w.cfg.Logf("worker %s: completed %s", w.cfg.ID, jb.Key)
}

// simulate runs the scenario exactly as leased (the coordinator pinned
// its scale already), converting panics into an error message.
func (w *Worker) simulate(sc sim.Scenario) (res sim.ScenarioResult, errMsg string) {
	defer func() {
		if r := recover(); r != nil {
			errMsg = fmt.Sprint(r)
		}
	}()
	return w.cfg.Runner.RunScenarioExact(sc), ""
}

// heartbeatLoop renews the lease until stop closes. A heartbeat that
// reports the key lost stops early: the coordinator gave the job away,
// so renewing is pointless (the eventual complete is still pushed —
// whoever finishes first wins, the other sees accepted=false).
func (w *Worker) heartbeatLoop(key string, ttl time.Duration, stop <-chan struct{}) {
	period := ttl / 3
	if period < time.Millisecond {
		period = time.Millisecond
	}
	tick := time.NewTicker(period)
	defer tick.Stop()
	for {
		select {
		case <-stop:
			return
		case <-tick.C:
			lost, err := w.heartbeat(context.Background(), []string{key})
			if err != nil {
				w.cfg.Logf("worker %s: heartbeat %s: %v", w.cfg.ID, key, err)
				continue
			}
			if len(lost) > 0 {
				w.cfg.Logf("worker %s: lease on %s lost", w.cfg.ID, key)
				return
			}
		}
	}
}

// sleep waits d or until ctx cancels, reporting whether to continue.
func (w *Worker) sleep(ctx context.Context, d time.Duration) bool {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return false
	case <-t.C:
		return true
	}
}
