package dispatch

import (
	"encoding/json"
	"fmt"
	"net/http"
	"sort"
	"sync"
	"time"

	"shotgun/internal/client"
	"shotgun/internal/sim"
	"shotgun/internal/store"
)

// Lease protocol defaults.
const (
	// DefaultLeaseTTL is how long a worker owns a job between
	// heartbeats before the coordinator assumes the worker died.
	DefaultLeaseTTL = 30 * time.Second
	// DefaultMaxAttempts is how many expired leases a job survives
	// before it is declared failed instead of requeued (a job that
	// kills every worker that touches it must not poison the queue
	// forever).
	DefaultMaxAttempts = 5
	// maxLeaseBatch caps jobs handed out per lease call.
	maxLeaseBatch = 64
	// maxRequestBytes bounds every dispatch request body; complete
	// bodies carry up to 16 per-core results, which fit comfortably.
	maxRequestBytes = 4 << 20
	// maxWorkerID bounds the self-reported worker name.
	maxWorkerID = 128
)

// CoordinatorConfig parameterizes a Coordinator.
type CoordinatorConfig struct {
	// LeaseTTL is the heartbeat deadline (default DefaultLeaseTTL).
	LeaseTTL time.Duration
	// QueueDepth bounds queued-plus-leased jobs (default 4096).
	QueueDepth int
	// MaxAttempts is the expired-lease budget per job (default
	// DefaultMaxAttempts).
	MaxAttempts int
	// Store, when non-nil, persists every record a worker pushes back,
	// so a restarted cluster serves completed keys without re-leasing —
	// and lets a standby coordinator recognize already-finished work a
	// re-registering worker reports. Any Backend works: the local store
	// or the sharded one.
	Store store.Backend
	// Sink receives job lifecycle events (required).
	Sink Sink
	// Now is the clock (default time.Now; tests inject a fake to drive
	// lease expiry deterministically).
	Now func() time.Time
	// ReapEvery is the periodic lease-reaper interval. Expired leases
	// are also reaped on every table access, but a quiet coordinator —
	// no worker polling — would otherwise never requeue a dead worker's
	// job and a blocking sweep waiter would hang until client timeout.
	// 0 means LeaseTTL/2; negative disables the ticker (tests drive
	// Reap directly).
	ReapEvery time.Duration
	// Standby marks this coordinator as a warm spare: it serves the
	// same surface but reports role "standby" until the first worker
	// registers or leases against it (the takeover signal), at which
	// point it reports "active". Purely observational — the lease table
	// behaves identically either way.
	Standby bool
}

// task is one job in the lease table.
type task struct {
	key string
	sc  sim.Scenario
	// worker/expiry are set while leased; empty/zero while queued.
	worker   string
	expiry   time.Time
	attempts int
}

// CoordinatorStats counts lease-table traffic since construction.
type CoordinatorStats struct {
	Role          string `json:"role"` // "active", or "standby" until takeover
	Enqueued      uint64 `json:"enqueued"`
	Leased        uint64 `json:"leased"`
	Completed     uint64 `json:"completed"`
	Failed        uint64 `json:"failed"`
	Requeued      uint64 `json:"requeued"`
	Expired       uint64 `json:"expired"` // attempts budget exhausted
	DupCompletes  uint64 `json:"dup_completes"`
	Adopted       uint64 `json:"adopted"`   // leases inherited via /v1/register
	Pending       int    `json:"pending"`   // queued, unleased
	InFlight      int    `json:"in_flight"` // leased
	ActiveWorkers int    `json:"active_workers"`
}

// Coordinator owns the cluster's job table: it leases queued scenarios
// to workers over HTTP, expires leases whose worker stopped
// heartbeating, and persists pushed-back results. It implements
// Executor, so the HTTP server uses it exactly like the local pool.
type Coordinator struct {
	ttl         time.Duration
	depth       int
	maxAttempts int
	st          store.Backend
	sink        Sink
	now         func() time.Time

	reapStop chan struct{} // closes on Stop; ends the reaper ticker
	reapDone chan struct{} // closed when the reaper goroutine exits
	stopOnce sync.Once

	mu      sync.Mutex
	cond    *sync.Cond // signaled whenever the table shrinks (drain wait)
	pending []*task    // FIFO, unleased
	leased  map[string]*task
	closed  bool // no new Enqueues
	halted  bool // no new leases either (abandoning Stop)
	standby bool // true until the first worker contact (takeover)
	// lastSeen tracks worker liveness for introspection only; leases,
	// not this map, decide correctness.
	lastSeen map[string]time.Time
	stats    CoordinatorStats
}

// NewCoordinator builds a coordinator. Sink is required.
func NewCoordinator(cfg CoordinatorConfig) *Coordinator {
	if cfg.Sink == nil {
		panic("dispatch: coordinator needs a sink")
	}
	if !store.Real(cfg.Store) {
		cfg.Store = nil // typed-nil normalization; see store.Real
	}
	c := &Coordinator{
		ttl:         cfg.LeaseTTL,
		depth:       cfg.QueueDepth,
		maxAttempts: cfg.MaxAttempts,
		st:          cfg.Store,
		sink:        cfg.Sink,
		now:         cfg.Now,
		standby:     cfg.Standby,
		leased:      make(map[string]*task),
		lastSeen:    make(map[string]time.Time),
		reapStop:    make(chan struct{}),
		reapDone:    make(chan struct{}),
	}
	if c.ttl <= 0 {
		c.ttl = DefaultLeaseTTL
	}
	if c.depth < 1 {
		c.depth = 4096
	}
	if c.maxAttempts < 1 {
		c.maxAttempts = DefaultMaxAttempts
	}
	if c.now == nil {
		c.now = time.Now
	}
	c.cond = sync.NewCond(&c.mu)
	every := cfg.ReapEvery
	if every == 0 {
		every = c.ttl / 2
	}
	if every > 0 {
		go c.reaper(every)
	} else {
		close(c.reapDone)
	}
	return c
}

// reaper ticks Reap so lease expiry does not depend on worker traffic:
// without it, a dead worker's lease on a quiet coordinator is only
// noticed "on the next table access" — which never comes — and a
// blocking sweep waiter hangs until its client times out.
func (c *Coordinator) reaper(every time.Duration) {
	defer close(c.reapDone)
	t := time.NewTicker(every)
	defer t.Stop()
	for {
		select {
		case <-c.reapStop:
			return
		case <-t.C:
			c.Reap()
		}
	}
}

// Reap requeues (or fails) every expired lease once, emitting the
// resulting sink events. The periodic reaper calls it on a ticker;
// tests call it directly against an injected clock.
func (c *Coordinator) Reap() {
	now := c.now()
	c.mu.Lock()
	events := c.reapLocked(now)
	c.mu.Unlock()
	c.emit(events)
}

// Enqueue implements Executor: the job joins the lease table's FIFO.
// It is idempotent per key: enqueueing a key that is already pending or
// leased is a no-op success. A standby taking over a sweep sees both
// orders — worker re-registration adopting a lease before the sweep is
// resubmitted, or after — and either way the key must end up in the
// table exactly once.
func (c *Coordinator) Enqueue(key string, sc sim.Scenario) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return ErrClosing
	}
	if _, ok := c.leased[key]; ok {
		return nil
	}
	for _, p := range c.pending {
		if p.key == key {
			return nil
		}
	}
	if len(c.pending)+len(c.leased) >= c.depth {
		return ErrQueueFull
	}
	c.pending = append(c.pending, &task{key: key, sc: sc})
	c.stats.Enqueued++
	return nil
}

// Stop implements Executor. Draining (abandon=false) waits until every
// queued and leased job has completed or failed — workers must still be
// polling for that to ever finish, so the signal-handler path uses
// abandon=true, which freezes the table and returns (completed work is
// already in the store; a restart plus resubmit recovers the rest).
func (c *Coordinator) Stop(abandon bool) {
	c.stopOnce.Do(func() { close(c.reapStop) })
	c.mu.Lock()
	c.closed = true
	if abandon {
		c.halted = true
	} else {
		for len(c.pending)+len(c.leased) > 0 {
			c.cond.Wait()
		}
	}
	c.mu.Unlock()
	<-c.reapDone
}

// sinkEvent is one deferred Sink call. The coordinator NEVER invokes
// the Sink while holding c.mu: the server's Sink methods take the job-
// table lock, and the server calls Enqueue (which takes c.mu) while
// holding that same lock — emitting under c.mu is an AB-BA deadlock
// with any concurrent submit. Every entry point collects events under
// the lock and emits them after unlocking. The server's Sink guards
// (JobRunning only upgrades "queued", JobRequeued only downgrades
// "running") keep out-of-order delivery harmless.
type sinkEvent struct {
	kind string // "running", "requeued", "failed"
	key  string
	msg  string
}

// emit delivers deferred events; call with c.mu NOT held.
func (c *Coordinator) emit(events []sinkEvent) {
	for _, e := range events {
		switch e.kind {
		case "running":
			c.sink.JobRunning(e.key)
		case "requeued":
			c.sink.JobRequeued(e.key)
		case "failed":
			c.sink.JobFailed(e.key, e.msg)
		}
	}
}

// reapLocked requeues (or fails) every lease that expired before now,
// returning the Sink events for the caller to emit after unlock.
// Called from every table entry point, so expiry needs no background
// goroutine: the next worker poll after the deadline observes it —
// and requeue matters only when a worker is around to take the job.
// It also drops worker-liveness entries older than the Stats
// activeness window, so a churn of unique worker names cannot grow
// lastSeen without bound.
func (c *Coordinator) reapLocked(now time.Time) []sinkEvent {
	var expired []*task
	for _, t := range c.leased {
		if now.After(t.expiry) {
			expired = append(expired, t)
		}
	}
	// Deterministic requeue order on multi-expiry (map iteration is
	// randomized): oldest expiry first, key as tiebreak.
	sort.Slice(expired, func(i, j int) bool {
		if !expired[i].expiry.Equal(expired[j].expiry) {
			return expired[i].expiry.Before(expired[j].expiry)
		}
		return expired[i].key < expired[j].key
	})
	var events []sinkEvent
	for _, t := range expired {
		delete(c.leased, t.key)
		t.worker, t.expiry = "", time.Time{}
		t.attempts++
		if t.attempts >= c.maxAttempts {
			c.stats.Expired++
			c.stats.Failed++
			events = append(events, sinkEvent{kind: "failed", key: t.key,
				msg: fmt.Sprintf("lease expired %d times (worker death budget exhausted)", t.attempts)})
			c.cond.Broadcast()
			continue
		}
		c.stats.Requeued++
		c.pending = append(c.pending, t)
		events = append(events, sinkEvent{kind: "requeued", key: t.key})
	}
	for worker, seen := range c.lastSeen {
		if now.Sub(seen) > 2*c.ttl {
			delete(c.lastSeen, worker)
		}
	}
	return events
}

// touchWorkerLocked records worker liveness — and, on a standby, marks
// the takeover: the first worker that talks to this coordinator is the
// signal that the fleet has failed over to it.
func (c *Coordinator) touchWorkerLocked(worker string, now time.Time) {
	c.lastSeen[worker] = now
	c.standby = false
}

// RegisterWorker adopts a (re-)registering worker's in-flight leases,
// returning the keys it refused — already finished, owned by another
// live worker, or malformed — which the worker should stop working on.
// This is the HA handshake: a worker failing over to a standby calls
// it with everything it holds BEFORE switching its traffic, so the
// standby's table knows the work is in flight and a concurrent sweep
// resubmission dedups onto the adopted lease instead of re-leasing the
// key to someone else (which would simulate it twice).
func (c *Coordinator) RegisterWorker(worker string, jobs []LeasedJob) (lost []string) {
	// Store lookups happen before taking the table lock: GetKey does
	// disk IO (or, sharded, HTTP), and the table lock must never wait on
	// either. The small race this opens — a job finishing between the
	// check and the adoption — only adopts a lease whose Complete will
	// arrive momentarily, never a duplicate simulation.
	done := make(map[string]bool, len(jobs))
	if c.st != nil {
		for _, jb := range jobs {
			if _, ok := c.st.GetKey(jb.Key); ok {
				done[jb.Key] = true
			}
		}
	}
	now := c.now()
	c.mu.Lock()
	events := c.reapLocked(now)
	c.touchWorkerLocked(worker, now)
	for _, jb := range jobs {
		if t, ok := c.leased[jb.Key]; ok {
			if t.worker == worker {
				t.expiry = now.Add(c.ttl) // already ours: a renewal
			} else {
				lost = append(lost, jb.Key) // live owner elsewhere; Complete dedups
			}
			continue
		}
		// The key must really address the scenario the worker claims to
		// be simulating — an adopted lease lands in the same table as
		// validated submissions.
		norm, _ := jb.Scenario.NormalizedPerm()
		if jb.Key == "" || len(jb.Scenario.Cores) == 0 || store.ScenarioKey(norm) != jb.Key {
			lost = append(lost, jb.Key)
			continue
		}
		// Pending here (the sweep was resubmitted before the worker made
		// contact): adopt the queued task rather than queueing a twin.
		var t *task
		for i, p := range c.pending {
			if p.key == jb.Key {
				t = p
				c.pending = append(c.pending[:i], c.pending[i+1:]...)
				break
			}
		}
		if t == nil {
			if done[jb.Key] {
				lost = append(lost, jb.Key) // finished before the failover
				continue
			}
			if c.closed || len(c.pending)+len(c.leased) >= c.depth {
				lost = append(lost, jb.Key)
				continue
			}
			t = &task{key: jb.Key, sc: jb.Scenario}
		}
		t.worker = worker
		t.expiry = now.Add(c.ttl)
		c.leased[jb.Key] = t
		c.stats.Adopted++
		events = append(events, sinkEvent{kind: "running", key: jb.Key})
	}
	c.mu.Unlock()
	c.emit(events)
	return lost
}

// Lease hands up to max queued jobs to a worker, each owned until
// now+TTL unless heartbeated. Returns the granted jobs and the TTL the
// worker must beat.
func (c *Coordinator) Lease(worker string, max int) ([]LeasedJob, time.Duration) {
	if max < 1 {
		max = 1
	}
	if max > maxLeaseBatch {
		max = maxLeaseBatch
	}
	now := c.now()
	c.mu.Lock()
	events := c.reapLocked(now)
	c.touchWorkerLocked(worker, now)
	var jobs []LeasedJob
	if !c.halted {
		for len(jobs) < max && len(c.pending) > 0 {
			t := c.pending[0]
			c.pending = c.pending[1:]
			t.worker = worker
			t.expiry = now.Add(c.ttl)
			c.leased[t.key] = t
			c.stats.Leased++
			jobs = append(jobs, LeasedJob{Key: t.key, Scenario: t.sc})
			events = append(events, sinkEvent{kind: "running", key: t.key})
		}
	}
	c.mu.Unlock()
	c.emit(events)
	return jobs, c.ttl
}

// Heartbeat renews the worker's leases, returning the keys it no
// longer owns (expired and requeued, or completed by someone else) so
// it can abandon that work.
func (c *Coordinator) Heartbeat(worker string, keys []string) (lost []string) {
	now := c.now()
	c.mu.Lock()
	events := c.reapLocked(now)
	c.touchWorkerLocked(worker, now)
	for _, key := range keys {
		if t, ok := c.leased[key]; ok && t.worker == worker {
			t.expiry = now.Add(c.ttl)
			continue
		}
		lost = append(lost, key)
	}
	c.mu.Unlock()
	c.emit(events)
	return lost
}

// Complete accepts one finished job from a worker. A result from a
// stale owner is still valid work and is accepted as long as the job
// is unfinished (leased to anyone, or back in the queue); only a
// genuinely finished job reports accepted=false, so at-least-once
// workers converge without double-recording. errMsg non-empty marks
// the job failed instead.
func (c *Coordinator) Complete(worker, key string, res sim.ScenarioResult, errMsg string) (accepted bool, err error) {
	now := c.now()
	c.mu.Lock()
	events := c.reapLocked(now)
	c.touchWorkerLocked(worker, now)
	t, ok := c.leased[key]
	if ok {
		delete(c.leased, key)
	} else {
		for i, p := range c.pending {
			if p.key == key {
				t, ok = p, true
				c.pending = append(c.pending[:i], c.pending[i+1:]...)
				break
			}
		}
	}
	if !ok {
		c.stats.DupCompletes++
		c.mu.Unlock()
		c.emit(events)
		return false, nil
	}
	if errMsg == "" && len(res.Cores) != len(t.sc.Cores) {
		// Malformed push: the job goes back to the queue rather than
		// trusting a result of the wrong shape.
		t.worker, t.expiry = "", time.Time{}
		c.pending = append(c.pending, t)
		c.stats.Requeued++
		events = append(events, sinkEvent{kind: "requeued", key: key})
		c.mu.Unlock()
		c.emit(events)
		return false, fmt.Errorf("dispatch: %d results for %d cores", len(res.Cores), len(t.sc.Cores))
	}
	if errMsg != "" {
		c.stats.Failed++
	} else {
		c.stats.Completed++
	}
	sc := t.sc
	c.cond.Broadcast()
	c.mu.Unlock()
	c.emit(events)

	// Store and sink outside the table lock: persistence does disk IO,
	// and the single table removal above already guarantees exactly one
	// completion (and so at most one store put) per key.
	if errMsg != "" {
		c.sink.JobFailed(key, errMsg)
		return true, nil
	}
	if c.st != nil {
		_ = c.st.PutScenario(sc, res) // best-effort, like the runner's put
	}
	c.sink.JobDone(key, res)
	return true, nil
}

// Stats snapshots the lease table. Workers count as active when seen
// within two TTLs.
func (c *Coordinator) Stats() CoordinatorStats {
	now := c.now()
	c.mu.Lock()
	defer c.mu.Unlock()
	s := c.stats
	s.Role = "active"
	if c.standby {
		s.Role = "standby"
	}
	s.Pending = len(c.pending)
	s.InFlight = len(c.leased)
	for _, seen := range c.lastSeen {
		if now.Sub(seen) <= 2*c.ttl {
			s.ActiveWorkers++
		}
	}
	return s
}

// ---------------------------------------------------------------------
// HTTP wire protocol. The request/response shapes live in
// internal/client — the single definition of the v1 surface — and the
// handlers here only bind them to the lease table.
// ---------------------------------------------------------------------

// LeasedJob is one job granted to a worker (defined in
// internal/client; aliased so dispatch APIs read naturally).
type LeasedJob = client.LeasedJob

// Register mounts the coordinator's routes on mux, alongside the
// simulation server's public API.
func (c *Coordinator) Register(mux *http.ServeMux) {
	mux.HandleFunc("POST /v1/lease", c.handleLease)
	mux.HandleFunc("POST /v1/heartbeat", c.handleHeartbeat)
	mux.HandleFunc("POST /v1/complete", c.handleComplete)
	mux.HandleFunc("POST /v1/register", c.handleRegister)
	mux.HandleFunc("GET /v1/cluster", c.handleStats)
}

// decodeInto decodes a size-capped JSON body, mapping every failure to
// a 400 envelope (malformed and oversized bodies must never 5xx or
// panic).
func decodeInto(w http.ResponseWriter, r *http.Request, v any) bool {
	r.Body = http.MaxBytesReader(w, r.Body, maxRequestBytes)
	if err := json.NewDecoder(r.Body).Decode(v); err != nil {
		client.WriteError(w, http.StatusBadRequest, client.CodeInvalidRequest, "decode body: %v", err)
		return false
	}
	return true
}

// validWorker rejects absent or absurd worker names.
func validWorker(w http.ResponseWriter, worker string) bool {
	if worker == "" || len(worker) > maxWorkerID {
		client.WriteError(w, http.StatusBadRequest, client.CodeInvalidRequest,
			"worker id must be 1..%d bytes", maxWorkerID)
		return false
	}
	return true
}

func (c *Coordinator) handleLease(w http.ResponseWriter, r *http.Request) {
	var req client.LeaseRequest
	if !decodeInto(w, r, &req) {
		return
	}
	if !validWorker(w, req.Worker) {
		return
	}
	jobs, ttl := c.Lease(req.Worker, req.Max)
	client.WriteJSON(w, client.LeaseResponse{TTLMillis: ttl.Milliseconds(), Jobs: jobs})
}

func (c *Coordinator) handleHeartbeat(w http.ResponseWriter, r *http.Request) {
	var req client.HeartbeatRequest
	if !decodeInto(w, r, &req) {
		return
	}
	if !validWorker(w, req.Worker) {
		return
	}
	if len(req.Keys) > c.depth {
		client.WriteError(w, http.StatusBadRequest, client.CodeInvalidRequest,
			"heartbeat for %d keys exceeds the %d-deep table", len(req.Keys), c.depth)
		return
	}
	client.WriteJSON(w, client.HeartbeatResponse{Lost: c.Heartbeat(req.Worker, req.Keys)})
}

func (c *Coordinator) handleComplete(w http.ResponseWriter, r *http.Request) {
	var req client.CompleteRequest
	if !decodeInto(w, r, &req) {
		return
	}
	if !validWorker(w, req.Worker) {
		return
	}
	if req.Key == "" {
		client.WriteError(w, http.StatusBadRequest, client.CodeInvalidRequest, "complete needs a job key")
		return
	}
	accepted, err := c.Complete(req.Worker, req.Key, req.Result, req.Error)
	if err != nil {
		client.WriteError(w, http.StatusBadRequest, client.CodeInvalidRequest, "%v", err)
		return
	}
	client.WriteJSON(w, client.CompleteResponse{Accepted: accepted})
}

func (c *Coordinator) handleRegister(w http.ResponseWriter, r *http.Request) {
	var req client.RegisterRequest
	if !decodeInto(w, r, &req) {
		return
	}
	if !validWorker(w, req.Worker) {
		return
	}
	if len(req.Jobs) > c.depth {
		client.WriteError(w, http.StatusBadRequest, client.CodeInvalidRequest,
			"register with %d jobs exceeds the %d-deep table", len(req.Jobs), c.depth)
		return
	}
	lost := c.RegisterWorker(req.Worker, req.Jobs)
	client.WriteJSON(w, client.RegisterResponse{TTLMillis: c.ttl.Milliseconds(), Lost: lost})
}

// clusterView is GET /v1/cluster's body: the lease-table stats plus,
// when the result store is sharded, per-shard health. The shard probe
// happens outside any coordinator lock.
type clusterView struct {
	CoordinatorStats
	Shards []store.ShardHealth `json:"shards,omitempty"`
}

func (c *Coordinator) handleStats(w http.ResponseWriter, _ *http.Request) {
	view := clusterView{CoordinatorStats: c.Stats()}
	if sh, ok := c.st.(*store.Sharded); ok {
		view.Shards = sh.Health()
	}
	client.WriteJSON(w, view)
}
