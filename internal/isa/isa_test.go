package isa

import (
	"testing"
	"testing/quick"
)

func TestBlockAlignment(t *testing.T) {
	cases := []struct {
		addr  Addr
		block Addr
		off   uint64
	}{
		{0x0, 0x0, 0},
		{0x3f, 0x0, 0x3f},
		{0x40, 0x40, 0},
		{0x1234, 0x1200, 0x34},
	}
	for _, c := range cases {
		if got := c.addr.Block(); got != c.block {
			t.Errorf("Block(%v) = %v, want %v", c.addr, got, c.block)
		}
		if got := c.addr.Offset(); got != c.off {
			t.Errorf("Offset(%v) = %v, want %v", c.addr, got, c.off)
		}
	}
}

func TestBlockProperty(t *testing.T) {
	// Block() is idempotent and always block-aligned.
	if err := quick.Check(func(raw uint64) bool {
		a := Addr(raw & ((1 << VABits) - 1))
		b := a.Block()
		return b.Offset() == 0 && b.Block() == b && b <= a && a-b < BlockBytes
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestAdd(t *testing.T) {
	a := Addr(0x1000)
	if got := a.Add(3); got != 0x100c {
		t.Fatalf("Add(3) = %v", got)
	}
}

func TestBlockDistance(t *testing.T) {
	if d := BlockDistance(0x1000, 0x1000+5*BlockBytes); d != 5 {
		t.Fatalf("distance = %d, want 5", d)
	}
	if d := BlockDistance(0x1000+5*BlockBytes, 0x1000); d != -5 {
		t.Fatalf("distance = %d, want -5", d)
	}
	// Within the same block the distance is zero.
	if d := BlockDistance(0x1000, 0x103f); d != 0 {
		t.Fatalf("distance = %d, want 0", d)
	}
}

func TestBranchKindClassification(t *testing.T) {
	uncond := []BranchKind{BranchJump, BranchCall, BranchRet, BranchTrap, BranchTrapRet}
	for _, k := range uncond {
		if !k.IsUnconditional() {
			t.Errorf("%v should be unconditional", k)
		}
	}
	if BranchCond.IsUnconditional() || BranchNone.IsUnconditional() {
		t.Error("cond/none must not be unconditional")
	}
	if !BranchRet.IsReturn() || !BranchTrapRet.IsReturn() {
		t.Error("ret/trapret must be returns")
	}
	if BranchCall.IsReturn() {
		t.Error("call is not a return")
	}
	if !BranchCall.IsCallLike() || !BranchTrap.IsCallLike() {
		t.Error("call/trap must be call-like")
	}
	if BranchJump.IsCallLike() {
		t.Error("jump is not call-like")
	}
}

func TestBranchKindString(t *testing.T) {
	if BranchCall.String() != "call" {
		t.Fatalf("String = %q", BranchCall.String())
	}
	if BranchKind(99).String() == "" {
		t.Fatal("unknown kind must still render")
	}
}

func TestBasicBlockGeometry(t *testing.T) {
	b := BasicBlock{PC: 0x1000, NumInstr: 4, Kind: BranchCond, Taken: true, Target: 0x2000}
	if got := b.BranchPC(); got != 0x100c {
		t.Fatalf("BranchPC = %v", got)
	}
	if got := b.FallThrough(); got != 0x1010 {
		t.Fatalf("FallThrough = %v", got)
	}
	if got := b.Next(); got != 0x2000 {
		t.Fatalf("Next (taken) = %v", got)
	}
	b.Taken = false
	if got := b.Next(); got != 0x1010 {
		t.Fatalf("Next (not taken) = %v", got)
	}
}

func TestBasicBlockBlocks(t *testing.T) {
	// A block fully inside one cache block.
	b := BasicBlock{PC: 0x1000, NumInstr: 4, Kind: BranchJump, Taken: true, Target: 0x4000}
	if got := b.Blocks(); len(got) != 1 || got[0] != 0x1000 {
		t.Fatalf("Blocks = %v", got)
	}
	// A block straddling a cache-block boundary.
	b = BasicBlock{PC: 0x1038, NumInstr: 8, Kind: BranchJump, Taken: true, Target: 0x4000}
	got := b.Blocks()
	if len(got) != 2 || got[0] != 0x1000 || got[1] != 0x1040 {
		t.Fatalf("straddling Blocks = %v", got)
	}
	// A max-size block starting at a block boundary spans two blocks
	// (31 instructions * 4B = 124B > 64B).
	b = BasicBlock{PC: 0x2000, NumInstr: MaxBlockInstrs, Kind: BranchJump, Taken: true, Target: 0x4000}
	if got := b.Blocks(); len(got) != 2 {
		t.Fatalf("max block spans %d cache blocks, want 2", len(got))
	}
}

func TestValidate(t *testing.T) {
	good := BasicBlock{PC: 0x1000, NumInstr: 4, Kind: BranchCall, Taken: true, Target: 0x2000}
	if err := good.Validate(); err != nil {
		t.Fatalf("valid block rejected: %v", err)
	}
	bad := []BasicBlock{
		{PC: 0x1000, NumInstr: 0, Kind: BranchCond},                              // empty
		{PC: 0x1000, NumInstr: MaxBlockInstrs + 1, Kind: BranchCond},             // oversized
		{PC: 0x1001, NumInstr: 2, Kind: BranchCond},                              // misaligned
		{PC: 1 << 50, NumInstr: 2, Kind: BranchCond},                             // VA overflow
		{PC: 0x1000, NumInstr: 2, Kind: BranchJump, Taken: false},                // uncond not taken
		{PC: 0x1000, NumInstr: 2, Kind: BranchNone, Taken: true, Target: 0x2000}, // none taken
		{PC: 0x1000, NumInstr: 2, Kind: BranchCond, Taken: true, Target: 0},      // zero target
	}
	for i, b := range bad {
		if err := b.Validate(); err == nil {
			t.Errorf("case %d: invalid block accepted: %+v", i, b)
		}
	}
}

func TestValidateProperty(t *testing.T) {
	// Any block built from sane components validates.
	if err := quick.Check(func(pcRaw uint64, n uint8, takenBit bool) bool {
		pc := Addr(pcRaw&((1<<40)-1)) &^ (InstrBytes - 1)
		if pc == 0 {
			pc = 0x1000
		}
		size := int(n%MaxBlockInstrs) + 1
		b := BasicBlock{PC: pc, NumInstr: size, Kind: BranchCond, Taken: takenBit, Target: 0x4000}
		return b.Validate() == nil
	}, nil); err != nil {
		t.Fatal(err)
	}
}
