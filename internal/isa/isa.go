// Package isa defines the architectural vocabulary shared by every layer of
// the simulator: instruction addresses, cache-block arithmetic, branch
// kinds, and the basic-block records that traces are made of.
//
// The modeled ISA follows the paper's setup: a 48-bit virtual address
// space, fixed 4-byte instructions (SPARC-v9-like), and 64-byte cache
// blocks.
package isa

import "fmt"

// Architectural constants from the paper's methodology (Section 5).
const (
	// InstrBytes is the size of one instruction. SPARC v9 (the paper's
	// ISA) uses fixed 4-byte instructions.
	InstrBytes = 4

	// BlockBytes is the L1-I / LLC cache block size.
	BlockBytes = 64

	// InstrPerBlock is the number of instructions per cache block.
	InstrPerBlock = BlockBytes / InstrBytes

	// VABits is the modeled virtual address width.
	VABits = 48

	// CondTargetOffsetBits bounds conditional-branch displacements:
	// SPARC v9 limits PC-relative conditional offsets to 22 bits, which
	// is why the paper's C-BTB stores only a 22-bit target offset.
	CondTargetOffsetBits = 22
)

// Addr is a 48-bit virtual byte address. The top 16 bits are always zero.
type Addr uint64

// Block returns the cache-block address (block-aligned byte address).
func (a Addr) Block() Addr { return a &^ (BlockBytes - 1) }

// BlockIndex returns the block number (address / block size), convenient
// for distance arithmetic between blocks.
func (a Addr) BlockIndex() uint64 { return uint64(a) / BlockBytes }

// Offset returns the byte offset of the address within its cache block.
func (a Addr) Offset() uint64 { return uint64(a) & (BlockBytes - 1) }

// Add returns the address advanced by n instructions.
func (a Addr) Add(n int) Addr { return a + Addr(n*InstrBytes) }

func (a Addr) String() string { return fmt.Sprintf("0x%012x", uint64(a)) }

// BlockDistance returns the signed distance in cache blocks from a to b
// (positive when b is after a).
func BlockDistance(a, b Addr) int {
	return int(int64(b.BlockIndex()) - int64(a.BlockIndex()))
}

// BranchKind classifies the instruction that terminates a basic block.
type BranchKind uint8

const (
	// BranchNone marks a block that ends by flowing into another region
	// without a branch (used for trace segmentation artifacts, e.g. a
	// block split at a sampling boundary).
	BranchNone BranchKind = iota
	// BranchCond is a conditional PC-relative branch (local control flow).
	BranchCond
	// BranchJump is an unconditional direct jump.
	BranchJump
	// BranchCall is a function call.
	BranchCall
	// BranchRet is a function return (target comes from the RAS).
	BranchRet
	// BranchTrap is a trap / system call (enters a kernel routine).
	BranchTrap
	// BranchTrapRet is a return from trap.
	BranchTrapRet
)

var branchKindNames = [...]string{
	BranchNone:    "none",
	BranchCond:    "cond",
	BranchJump:    "jump",
	BranchCall:    "call",
	BranchRet:     "ret",
	BranchTrap:    "trap",
	BranchTrapRet: "trapret",
}

func (k BranchKind) String() string {
	if int(k) < len(branchKindNames) {
		return branchKindNames[k]
	}
	return fmt.Sprintf("BranchKind(%d)", uint8(k))
}

// IsUnconditional reports whether the branch always transfers control.
// Per the paper, calls, jumps, returns, and traps form the global control
// flow; conditional branches form the local control flow.
func (k BranchKind) IsUnconditional() bool {
	switch k {
	case BranchJump, BranchCall, BranchRet, BranchTrap, BranchTrapRet:
		return true
	}
	return false
}

// IsReturn reports whether the branch reads its target from the RAS.
func (k BranchKind) IsReturn() bool {
	return k == BranchRet || k == BranchTrapRet
}

// IsCallLike reports whether the branch pushes a return address on the RAS.
func (k BranchKind) IsCallLike() bool {
	return k == BranchCall || k == BranchTrap
}

// BasicBlock is one retired (or fetched) basic block: a run of straight-line
// instructions ending in a branch. This matches the paper's basic-block
// definition (footnote 1): straight-line code terminated by a branch
// instruction, which is what a basic-block-oriented BTB indexes.
type BasicBlock struct {
	// PC is the address of the first instruction in the block.
	PC Addr
	// NumInstr is the number of instructions in the block, including the
	// terminating branch. The paper encodes this in a 5-bit Size field,
	// so it is capped at MaxBlockInstrs.
	NumInstr int
	// Kind is the terminating branch's kind.
	Kind BranchKind
	// Taken reports the branch outcome (always true for unconditional
	// branches; meaningful only for BranchCond).
	Taken bool
	// Target is the branch target when taken. For returns it still holds
	// the actual target so the simulator can verify RAS behaviour.
	Target Addr
}

// MaxBlockInstrs is the largest basic block representable in the BTB's
// 5-bit size field (31 instructions). Workload generation never produces
// larger blocks; longer straight-line runs are split.
const MaxBlockInstrs = 31

// BranchPC returns the address of the terminating branch instruction.
func (b BasicBlock) BranchPC() Addr { return b.PC.Add(b.NumInstr - 1) }

// FallThrough returns the address of the instruction after the block.
func (b BasicBlock) FallThrough() Addr { return b.PC.Add(b.NumInstr) }

// Next returns the address control flow actually moves to after the block.
func (b BasicBlock) Next() Addr {
	if b.Taken {
		return b.Target
	}
	return b.FallThrough()
}

// BlockSpan returns the first and last cache-block addresses the basic
// block touches. Hot paths iterate the span directly
// (`for blk := first; blk <= last; blk += BlockBytes`) instead of
// allocating the slice Blocks returns.
func (b BasicBlock) BlockSpan() (first, last Addr) {
	return b.PC.Block(), b.PC.Add(b.NumInstr - 1).Block()
}

// Blocks returns the cache-block addresses the basic block touches, in
// ascending order. A small block may touch one cache block; a long one may
// straddle two or more.
func (b BasicBlock) Blocks() []Addr {
	first := b.PC.Block()
	last := b.PC.Add(b.NumInstr - 1).Block()
	n := int(last.BlockIndex()-first.BlockIndex()) + 1
	out := make([]Addr, 0, n)
	for i := 0; i < n; i++ {
		out = append(out, first+Addr(i*BlockBytes))
	}
	return out
}

// Validate checks the structural invariants of a basic block record.
func (b BasicBlock) Validate() error {
	if b.NumInstr <= 0 || b.NumInstr > MaxBlockInstrs {
		return fmt.Errorf("isa: block at %v has invalid size %d", b.PC, b.NumInstr)
	}
	if b.PC.Offset()%InstrBytes != 0 {
		return fmt.Errorf("isa: block PC %v not instruction aligned", b.PC)
	}
	if uint64(b.PC)>>VABits != 0 {
		return fmt.Errorf("isa: block PC %v exceeds %d-bit VA", b.PC, VABits)
	}
	if b.Kind.IsUnconditional() && !b.Taken {
		return fmt.Errorf("isa: unconditional %v at %v marked not-taken", b.Kind, b.PC)
	}
	if b.Kind == BranchNone && b.Taken {
		return fmt.Errorf("isa: non-branch block at %v marked taken", b.PC)
	}
	if b.Taken && b.Target == 0 {
		return fmt.Errorf("isa: taken branch at %v has zero target", b.PC)
	}
	return nil
}
