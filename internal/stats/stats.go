// Package stats provides the aggregate metrics and text rendering used
// by the experiment harness: geometric means, averages, and fixed-width
// tables that mirror the rows and series of the paper's tables and
// figures.
package stats

import (
	"fmt"
	"math"
	"strings"
)

// GeoMean returns the geometric mean of xs (the paper reports gmean
// speedups). Non-positive values are rejected with NaN.
func GeoMean(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	sum := 0.0
	for _, x := range xs {
		if x <= 0 {
			return math.NaN()
		}
		sum += math.Log(x)
	}
	return math.Exp(sum / float64(len(xs)))
}

// Mean returns the arithmetic mean of xs.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// Table renders fixed-width experiment tables.
type Table struct {
	title   string
	headers []string
	rows    [][]string
	sampled bool
}

// NewTable builds a table with the given title and column headers.
func NewTable(title string, headers ...string) *Table {
	return &Table{title: title, headers: headers}
}

// AddRow appends a row of pre-formatted cells.
func (t *Table) AddRow(cells ...string) {
	t.rows = append(t.rows, cells)
}

// Title returns the table's title line.
func (t *Table) Title() string { return t.title }

// Headers returns the column headers.
func (t *Table) Headers() []string { return t.headers }

// Rows returns the formatted cell grid. Callers must not mutate it: the
// returned slices alias the table's own storage, and machine-readable
// emitters (internal/report) rely on seeing exactly what String renders.
func (t *Table) Rows() [][]string { return t.rows }

// SetSampled marks the table as built from sampled (confidence-
// interval) simulation results rather than exact runs. Machine-readable
// emitters (internal/report) carry the marker so downstream consumers
// never mistake an estimate-bearing table for an exact one.
func (t *Table) SetSampled() { t.sampled = true }

// Sampled reports whether the table carries sampled estimates.
func (t *Table) Sampled() bool { return t.sampled }

// Addf appends a row where the first cell is a label and the remaining
// cells are formatted floats.
func (t *Table) AddF(label string, format string, values ...float64) {
	cells := []string{label}
	for _, v := range values {
		cells = append(cells, fmt.Sprintf(format, v))
	}
	t.AddRow(cells...)
}

// String renders the table.
func (t *Table) String() string {
	widths := make([]int, len(t.headers))
	for i, h := range t.headers {
		widths[i] = len(h)
	}
	for _, row := range t.rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	if t.title != "" {
		fmt.Fprintf(&b, "%s\n", t.title)
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			if i < len(widths) {
				fmt.Fprintf(&b, "%-*s", widths[i], c)
			} else {
				b.WriteString(c)
			}
		}
		b.WriteByte('\n')
	}
	writeRow(t.headers)
	total := 0
	for _, w := range widths {
		total += w + 2
	}
	b.WriteString(strings.Repeat("-", total))
	b.WriteByte('\n')
	for _, row := range t.rows {
		writeRow(row)
	}
	return b.String()
}
