package stats

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestGeoMean(t *testing.T) {
	if g := GeoMean([]float64{1, 4}); g != 2 {
		t.Fatalf("GeoMean = %v, want 2", g)
	}
	if g := GeoMean([]float64{3, 3, 3}); math.Abs(g-3) > 1e-12 {
		t.Fatalf("GeoMean = %v, want 3", g)
	}
	if !math.IsNaN(GeoMean(nil)) {
		t.Fatal("empty gmean must be NaN")
	}
	if !math.IsNaN(GeoMean([]float64{1, -2})) {
		t.Fatal("negative gmean must be NaN")
	}
}

func TestGeoMeanBetweenMinMax(t *testing.T) {
	if err := quick.Check(func(a, b uint16) bool {
		x, y := float64(a)+1, float64(b)+1
		g := GeoMean([]float64{x, y})
		return g >= math.Min(x, y)-1e-9 && g <= math.Max(x, y)+1e-9
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestMean(t *testing.T) {
	if m := Mean([]float64{1, 2, 3}); m != 2 {
		t.Fatalf("Mean = %v", m)
	}
	if !math.IsNaN(Mean(nil)) {
		t.Fatal("empty mean must be NaN")
	}
}

func TestTableRendering(t *testing.T) {
	tab := NewTable("Title", "Name", "X", "Y")
	tab.AddRow("alpha", "1", "2")
	tab.AddF("beta", "%.2f", 1.5, 2.25)
	out := tab.String()
	for _, want := range []string{"Title", "Name", "alpha", "beta", "1.50", "2.25"} {
		if !strings.Contains(out, want) {
			t.Fatalf("render missing %q:\n%s", want, out)
		}
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 5 { // title, header, rule, 2 rows
		t.Fatalf("lines = %d:\n%s", len(lines), out)
	}
}

func TestTableAlignment(t *testing.T) {
	tab := NewTable("", "A", "B")
	tab.AddRow("xxxxxxxx", "1")
	out := tab.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	// Header "B" must start at the same column as value "1".
	h, r := lines[0], lines[2]
	if strings.Index(h, "B") != strings.Index(r, "1") {
		t.Fatalf("columns misaligned:\n%s", out)
	}
}
