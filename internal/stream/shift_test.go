package stream

import (
	"testing"

	"shotgun/internal/isa"
)

func TestRecordAndReplay(t *testing.T) {
	s := New(64, 32)
	seq := []isa.Addr{0x1000, 0x2000, 0x3000, 0x4000, 0x5000}
	for _, b := range seq {
		s.Record(b)
	}
	pos, ok := s.Find(0x2000)
	if !ok {
		t.Fatal("trigger not found")
	}
	succ := s.Successors(pos, 3)
	want := []isa.Addr{0x3000, 0x4000, 0x5000}
	if len(succ) != 3 {
		t.Fatalf("successors = %v", succ)
	}
	for i := range want {
		if succ[i] != want[i] {
			t.Fatalf("successors = %v, want %v", succ, want)
		}
	}
}

func TestConsecutiveDedup(t *testing.T) {
	s := New(64, 32)
	s.Record(0x1000)
	s.Record(0x1000)
	s.Record(0x1000)
	s.Record(0x2000)
	if s.Head() != 2 {
		t.Fatalf("head = %d, want 2 (deduped)", s.Head())
	}
}

func TestStaleIndexEntryDies(t *testing.T) {
	s := New(4, 32) // tiny history: 4 entries
	s.Record(0x1000)
	for i := 1; i <= 8; i++ {
		s.Record(isa.Addr(0x2000 + i*0x40))
	}
	// 0x1000's history slot has been overwritten.
	if _, ok := s.Find(0x1000); ok {
		t.Fatal("stale index entry returned")
	}
}

func TestRepeatedStreamUpdatesIndex(t *testing.T) {
	s := New(64, 64)
	// First pass: A B C, then unrelated blocks push A out of the
	// compaction window; second pass: A D E. Replay of A must give D E.
	seq := []isa.Addr{0xa000, 0xb000, 0xc000}
	for i := 0; i < compactWindow+1; i++ {
		seq = append(seq, isa.Addr(0x100000+i*0x40))
	}
	seq = append(seq, 0xa000, 0xd000, 0xe000)
	for _, b := range seq {
		s.Record(b)
	}
	pos, ok := s.Find(0xa000)
	if !ok {
		t.Fatal("not found")
	}
	succ := s.Successors(pos, 2)
	if len(succ) != 2 || succ[0] != 0xd000 || succ[1] != 0xe000 {
		t.Fatalf("successors = %v, want [0xd000 0xe000]", succ)
	}
}

func TestCompactionSuppressesLoopRetouch(t *testing.T) {
	s := New(64, 32)
	// A tight loop alternating two blocks must not flood the history.
	for i := 0; i < 20; i++ {
		s.Record(0x1000)
		s.Record(0x2000)
	}
	if s.Head() != 2 {
		t.Fatalf("head = %d, want 2 (loop compacted)", s.Head())
	}
}

func TestIndexCapacityBounded(t *testing.T) {
	s := New(1<<16, 16)
	for i := 0; i < 1000; i++ {
		s.Record(isa.Addr(i * 0x40))
	}
	if len(s.index) > 16 {
		t.Fatalf("index grew to %d, cap 16", len(s.index))
	}
}

func TestSuccessorsTruncatedAtHead(t *testing.T) {
	s := New(64, 32)
	s.Record(0x1000)
	s.Record(0x2000)
	pos, _ := s.Find(0x1000)
	succ := s.Successors(pos, 10)
	if len(succ) != 1 || succ[0] != 0x2000 {
		t.Fatalf("successors = %v", succ)
	}
}

func TestStorageBitsRealistic(t *testing.T) {
	// The paper's Confluence configuration: 32K-entry history + 8K-entry
	// index — hundreds of KB of metadata.
	s := New(32<<10, 8<<10)
	kb := float64(s.StorageBits()) / 8 / 1024
	if kb < 150 || kb > 300 {
		t.Fatalf("SHIFT metadata = %.0fKB, expected hundreds of KB", kb)
	}
}

func BenchmarkRecord(b *testing.B) {
	s := New(32<<10, 8<<10)
	for i := 0; i < b.N; i++ {
		s.Record(isa.Addr((i % 5000) * 64))
	}
}
