// Package stream implements the temporal-streaming substrate behind
// Confluence: SHIFT's shared instruction history (Kaynak et al.,
// MICRO'13/'15). A circular history buffer records the retire-order L1-I
// block access stream; an index table maps a block address to its most
// recent history position. On an L1-I miss the prefetcher looks the block
// up in the index and replays the blocks that followed it last time.
//
// In the real design both structures are virtualized into the LLC; the
// capacity they displace and the LLC round-trip on every stream restart
// are modeled by the Confluence engine (package prefetch), not here.
package stream

import "shotgun/internal/isa"

// SHIFT is the shared history + index table.
type SHIFT struct {
	ring []isa.Addr
	head uint64 // total records; next write position is head % len(ring)

	index    map[isa.Addr]uint64
	indexCap int

	// recent is a small recency window implementing spatio-temporal
	// compaction: re-touches of a just-recorded block (loops, straddling
	// basic blocks) are not re-recorded, so the history span covers the
	// footprint rather than the raw access count.
	recent    [compactWindow]isa.Addr
	recentPos int

	Records uint64
	Probes  uint64
	Found   uint64
}

// compactWindow is the compaction recency depth.
const compactWindow = 8

// New builds a SHIFT history of historyEntries blocks with an index table
// bounded at indexEntries (the paper models 32K history + 8K index).
func New(historyEntries, indexEntries int) *SHIFT {
	if historyEntries <= 0 || indexEntries <= 0 {
		panic("stream: non-positive SHIFT geometry")
	}
	return &SHIFT{
		ring:     make([]isa.Addr, historyEntries),
		index:    make(map[isa.Addr]uint64, indexEntries),
		indexCap: indexEntries,
	}
}

// Record appends a block access to the history (recently recorded blocks
// are compacted away, as SHIFT's spatio-temporal compaction would) and
// points the index at it.
func (s *SHIFT) Record(block isa.Addr) {
	block = block.Block()
	for _, r := range s.recent {
		if r == block && s.head > 0 {
			return
		}
	}
	s.recent[s.recentPos] = block
	s.recentPos = (s.recentPos + 1) % compactWindow

	pos := s.head % uint64(len(s.ring))
	// The overwritten block's index entry may now be stale; it is
	// detected lazily on lookup (position out of the live window).
	s.ring[pos] = block
	s.head++
	s.Records++

	if len(s.index) >= s.indexCap {
		if _, ok := s.index[block]; !ok {
			// Index full: evict an arbitrary entry (hardware would
			// overwrite a set way; stale entries die anyway).
			for k := range s.index {
				delete(s.index, k)
				break
			}
		}
	}
	s.index[block] = s.head - 1
}

// live reports whether a history position has not been overwritten.
func (s *SHIFT) live(pos uint64) bool {
	return pos < s.head && s.head-pos <= uint64(len(s.ring))
}

// Find returns the most recent history position of block, if it is still
// within the live window.
func (s *SHIFT) Find(block isa.Addr) (uint64, bool) {
	s.Probes++
	pos, ok := s.index[block.Block()]
	if !ok || !s.live(pos) {
		return 0, false
	}
	s.Found++
	return pos, true
}

// At returns the block at an absolute history position.
func (s *SHIFT) At(pos uint64) (isa.Addr, bool) {
	if !s.live(pos) {
		return 0, false
	}
	return s.ring[pos%uint64(len(s.ring))], true
}

// Successors returns up to n blocks recorded after pos (exclusive).
func (s *SHIFT) Successors(pos uint64, n int) []isa.Addr {
	var out []isa.Addr
	for i := uint64(1); i <= uint64(n); i++ {
		b, ok := s.At(pos + i)
		if !ok {
			break
		}
		out = append(out, b)
	}
	return out
}

// Head returns the number of records so far (the next write position).
func (s *SHIFT) Head() uint64 { return s.head }

// StorageBits returns the modeled metadata cost: 42-bit block addresses
// in the history plus (42-bit tag + pointer) index entries — the hundreds
// of kilobytes per the temporal-streaming literature.
func (s *SHIFT) StorageBits() int {
	const blockAddrBits = isa.VABits - 6 // 42-bit block address
	ptrBits := 1
	for 1<<ptrBits < len(s.ring) {
		ptrBits++
	}
	return len(s.ring)*blockAddrBits + s.indexCap*(blockAddrBits+ptrBits)
}
