// Package shotgun's top-level benchmarks regenerate every table and
// figure of the paper's evaluation under `go test -bench`. Each benchmark
// prints its table once (on the first iteration) and reports simulated
// instructions per second, so `go test -bench=. -benchmem` reproduces the
// full evaluation and characterizes simulator performance at once.
//
// Benchmarks run at a reduced scale by default so the whole suite
// completes in minutes; cmd/shotgun-bench runs the same experiments at
// full scale.
package shotgun_test

import (
	"bytes"
	"fmt"
	"os"
	"sync"
	"testing"
	"time"

	"shotgun/internal/btb"
	"shotgun/internal/harness"
	"shotgun/internal/report"
	"shotgun/internal/sim"
	"shotgun/internal/stats"
	"shotgun/internal/trace"
	"shotgun/internal/workload"
)

// benchScale balances fidelity and suite runtime.
func benchScale() harness.Scale {
	return harness.Scale{WarmupInstr: 600_000, MeasureInstr: 900_000, Samples: 1}
}

var (
	runnerOnce sync.Once
	runner     *harness.Runner
)

func sharedRunner() *harness.Runner {
	runnerOnce.Do(func() { runner = harness.NewRunner(benchScale()) })
	return runner
}

func benchExperiment(b *testing.B, id string) {
	b.Helper()
	exp, ok := harness.Find(id)
	if !ok {
		b.Fatalf("unknown experiment %s", id)
	}
	r := sharedRunner()
	for i := 0; i < b.N; i++ {
		out := exp.Run(r)
		if i == 0 {
			fmt.Println(out)
		}
	}
}

// BenchmarkSimThroughput measures raw single-simulation speed as
// simulated (retired) instructions per second on one representative
// configuration — the paper's flagship workload under the paper's
// mechanism. The shared program/predecode artifacts are warmed first so
// the number characterizes the cycle simulator itself, not one-time
// program generation.
func BenchmarkSimThroughput(b *testing.B) {
	cfg := sim.Config{
		Workload:     "Oracle",
		Mechanism:    sim.Shotgun,
		WarmupInstr:  200_000,
		MeasureInstr: 800_000,
		Samples:      1,
	}
	prof := workload.MustGet(cfg.Workload)
	prof.Program()
	prof.Decoder()
	instrPerRun := cfg.WarmupInstr + cfg.MeasureInstr
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res := sim.MustRun(cfg)
		if res.Core.Instructions == 0 {
			b.Fatal("simulation retired no instructions")
		}
	}
	instrPerSec := float64(uint64(b.N)*instrPerRun) / b.Elapsed().Seconds()
	b.ReportMetric(instrPerSec, "instr/s")
	emitBenchRecord(b, "BenchmarkSimThroughput", uint64(b.N)*instrPerRun)
}

// emitBenchRecord appends a throughput record to the SHOTGUN_BENCH_JSON
// artifact when CI's bench-smoke job asks for one; every benchmark of
// the run accumulates into the same file.
func emitBenchRecord(b *testing.B, name string, instructions uint64) {
	b.Helper()
	path := os.Getenv("SHOTGUN_BENCH_JSON")
	if path == "" {
		return
	}
	if err := report.AppendBenchFile(path, report.Bench{
		Name:         name,
		Instructions: instructions,
		Seconds:      b.Elapsed().Seconds(),
		InstrPerSec:  float64(instructions) / b.Elapsed().Seconds(),
	}); err != nil {
		b.Fatalf("write %s: %v", path, err)
	}
}

// BenchmarkSampledThroughput is the sampling mode's acceptance gate: a
// long recorded trace is simulated twice over the same span — exactly,
// and under a bounded-window periodic-sampling schedule — and the
// benchmark asserts the sampled IPC estimate contains the exact IPC
// within its reported 95% confidence interval at a >=10x wall-clock
// speedup. The sampled run's throughput lands in SHOTGUN_BENCH_JSON so
// CI tracks the fast path's trajectory alongside the detailed kernel's.
func BenchmarkSampledThroughput(b *testing.B) {
	// Record one pass of the workload's walker as a trace: the stream
	// both runs replay, so exact and sampled see byte-identical input.
	const traceBlocks = 524_288
	prof := workload.MustGet("Oracle")
	prof.Program()
	prof.Decoder()
	var buf bytes.Buffer
	tw, err := trace.NewWriter(&buf)
	if err != nil {
		b.Fatal(err)
	}
	walker := prof.NewWalker()
	var traceInstr uint64
	for i := 0; i < traceBlocks; i++ {
		bb := walker.Next()
		traceInstr += uint64(bb.NumInstr)
		if err := tw.Write(bb); err != nil {
			b.Fatal(err)
		}
	}
	if err := tw.Flush(); err != nil {
		b.Fatal(err)
	}
	data := buf.Bytes()

	exactCfg := sim.Config{
		Workload:     "Oracle",
		Mechanism:    sim.Shotgun,
		WarmupInstr:  50_000,
		MeasureInstr: traceInstr - 50_000,
		Samples:      1,
	}
	sampledCfg := exactCfg
	// Four 512-block units a 131072-block period apart traverse exactly
	// one trace pass; each unit is preceded by a 2048-block functional
	// warming window and a 512-block detailed warm-up, the distant gap
	// LLC-skimmed — the schedule that keeps detailed simulation under 1%
	// of the stream.
	sampledCfg.Sampling = &sim.Sampling{
		PeriodBlocks:   131_072,
		WarmupBlocks:   512,
		UnitBlocks:     512,
		FuncWarmBlocks: 2_048,
		Units:          4,
	}

	var exactDur, sampledDur time.Duration
	var sampledInstr uint64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		exactStream, err := trace.NewStream(bytes.NewReader(data))
		if err != nil {
			b.Fatal(err)
		}
		start := time.Now()
		exact, err := sim.RunStream(exactCfg, exactStream)
		if err != nil {
			b.Fatal(err)
		}
		exactDur += time.Since(start)

		sampledStream, err := trace.NewStream(bytes.NewReader(data))
		if err != nil {
			b.Fatal(err)
		}
		start = time.Now()
		sampled, err := sim.RunStream(sampledCfg, sampledStream)
		if err != nil {
			b.Fatal(err)
		}
		sampledDur += time.Since(start)

		s := sampled.Sampled
		if s == nil || s.IPC.HalfWidth <= 0 {
			b.Fatalf("sampled run reported no confidence interval: %+v", s)
		}
		if s.TotalInstr() < exact.Core.Instructions {
			b.Fatalf("sampled traversal %d below exact span %d", s.TotalInstr(), exact.Core.Instructions)
		}
		if !s.IPC.Contains(exact.IPC()) {
			b.Fatalf("sampled IPC %v does not contain exact IPC %.4f", s.IPC, exact.IPC())
		}
		sampledInstr += s.TotalInstr()
	}
	speedup := float64(exactDur) / float64(sampledDur)
	if speedup < 10 {
		b.Fatalf("sampled speedup %.1fx below the 10x acceptance bar (exact %v, sampled %v)",
			speedup, exactDur, sampledDur)
	}
	instrPerSec := float64(sampledInstr) / sampledDur.Seconds()
	b.ReportMetric(instrPerSec, "instr/s")
	b.ReportMetric(speedup, "speedup")
	if path := os.Getenv("SHOTGUN_BENCH_JSON"); path != "" {
		if err := report.AppendBenchFile(path, report.Bench{
			Name:         "BenchmarkSampledThroughput",
			Instructions: sampledInstr,
			Seconds:      sampledDur.Seconds(),
			InstrPerSec:  instrPerSec,
		}); err != nil {
			b.Fatalf("write %s: %v", path, err)
		}
	}
}

// BenchmarkScenarioThroughput measures multi-core scenario speed on the
// interference experiment's shape — a shotgun primary plus entire-region
// co-runners over one shared LLC and mesh — as total simulated
// instructions per second across the core-count sweep. This is the
// number the event-driven kernel exists to move: the lockstep engine's
// cost scaled with cycles × cores regardless of how many cores were
// stalled; the per-count records land in the same SHOTGUN_BENCH_JSON
// artifact as BenchmarkSimThroughput so CI tracks the multi-core
// trajectory alongside single-sim speed.
func BenchmarkScenarioThroughput(b *testing.B) {
	prof := workload.MustGet(harness.InterferenceWorkload)
	prof.Program()
	prof.Decoder()
	mix := harness.InterferenceMixes()[1] // entire-region: the heavy one
	for _, cores := range []int{1, 4, 8, 16} {
		b.Run(fmt.Sprintf("cores=%d", cores), func(b *testing.B) {
			sc := harness.InterferenceScenario(cores-1, mix)
			var perCore uint64
			for i := range sc.Cores {
				sc.Cores[i].WarmupInstr = 150_000
				sc.Cores[i].MeasureInstr = 250_000
				sc.Cores[i].Samples = 1
				perCore = sc.Cores[i].WarmupInstr + sc.Cores[i].MeasureInstr
			}
			instrPerRun := uint64(cores) * perCore
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				res := sim.MustRunScenario(sc)
				if res.Cores[0].Core.Instructions == 0 {
					b.Fatal("scenario retired no instructions")
				}
			}
			instrPerSec := float64(uint64(b.N)*instrPerRun) / b.Elapsed().Seconds()
			b.ReportMetric(instrPerSec, "instr/s")
			emitBenchRecord(b, fmt.Sprintf("BenchmarkScenarioThroughput/cores=%d", cores),
				uint64(b.N)*instrPerRun)
		})
	}
}

// BenchmarkTable1 regenerates Table 1 (BTB MPKI without prefetching).
func BenchmarkTable1(b *testing.B) { benchExperiment(b, "table1") }

// BenchmarkFigure1 regenerates Figure 1 (Confluence/Boomerang/Ideal).
func BenchmarkFigure1(b *testing.B) { benchExperiment(b, "fig1") }

// BenchmarkFigure3 regenerates Figure 3 (region spatial locality).
func BenchmarkFigure3(b *testing.B) { benchExperiment(b, "fig3") }

// BenchmarkFigure4 regenerates Figure 4 (branch working-set coverage).
func BenchmarkFigure4(b *testing.B) { benchExperiment(b, "fig4") }

// BenchmarkFigure6 regenerates Figure 6 (stall-cycle coverage).
func BenchmarkFigure6(b *testing.B) { benchExperiment(b, "fig6") }

// BenchmarkFigure7 regenerates Figure 7 (speedups).
func BenchmarkFigure7(b *testing.B) { benchExperiment(b, "fig7") }

// BenchmarkFigure8 regenerates Figure 8 (footprint-variant coverage).
func BenchmarkFigure8(b *testing.B) { benchExperiment(b, "fig8") }

// BenchmarkFigure9 regenerates Figure 9 (footprint-variant speedup).
func BenchmarkFigure9(b *testing.B) { benchExperiment(b, "fig9") }

// BenchmarkFigure10 regenerates Figure 10 (prefetch accuracy).
func BenchmarkFigure10(b *testing.B) { benchExperiment(b, "fig10") }

// BenchmarkFigure11 regenerates Figure 11 (L1-D fill latency).
func BenchmarkFigure11(b *testing.B) { benchExperiment(b, "fig11") }

// BenchmarkFigure12 regenerates Figure 12 (C-BTB sensitivity).
func BenchmarkFigure12(b *testing.B) { benchExperiment(b, "fig12") }

// BenchmarkFigure13 regenerates Figure 13 (BTB budget sensitivity).
func BenchmarkFigure13(b *testing.B) { benchExperiment(b, "fig13") }

// BenchmarkAblationNoRIB quantifies the RIB's value (Section 4.2.1):
// Shotgun with a dedicated RIB vs returns burning full U-BTB entries at
// the same storage budget, on the two highest-BTB-pressure workloads.
func BenchmarkAblationNoRIB(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t := stats.NewTable("Ablation: dedicated RIB vs returns in U-BTB (equal storage)",
			"Workload", "with-RIB", "no-RIB")
		for _, wl := range []string{"Oracle", "DB2"} {
			base := sharedRunner().Run(sim.Config{Workload: wl, Mechanism: sim.None})
			with := sharedRunner().Run(sim.Config{Workload: wl, Mechanism: sim.Shotgun})
			sizes, err := btb.ShotgunSizesNoRIB(2048)
			if err != nil {
				b.Fatal(err)
			}
			without := sharedRunner().Run(sim.Config{
				Workload: wl, Mechanism: sim.Shotgun, ShotgunSizes: &sizes,
			})
			t.AddF(wl, "%.3f", with.Speedup(base), without.Speedup(base))
		}
		if i == 0 {
			fmt.Println(t.String())
		}
	}
}

// BenchmarkAblationRDIP compares RDIP (Section 4.3's closest related
// work: RAS-context L1-I prefetching, no BTB prefilling) against
// Boomerang and Shotgun.
func BenchmarkAblationRDIP(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t := stats.NewTable("Ablation: RDIP vs BTB-directed prefetchers (speedup over no-prefetch)",
			"Workload", "rdip", "boomerang", "shotgun")
		for _, wl := range []string{"Apache", "Oracle", "DB2"} {
			base := sharedRunner().Run(sim.Config{Workload: wl, Mechanism: sim.None})
			var cells []float64
			for _, m := range []sim.Mechanism{sim.RDIP, sim.Boomerang, sim.Shotgun} {
				res := sharedRunner().Run(sim.Config{Workload: wl, Mechanism: m})
				cells = append(cells, res.Speedup(base))
			}
			t.AddF(wl, "%.3f", cells...)
		}
		if i == 0 {
			fmt.Println(t.String())
		}
	}
}
