// prefetcher_compare: a Figure 7-style head-to-head of every control-flow
// delivery mechanism on one workload, printing speedup, stall coverage,
// and the miss rates that explain them.
package main

import (
	"flag"
	"fmt"

	"shotgun/internal/sim"
)

func main() {
	wl := flag.String("workload", "Oracle", "workload to compare on")
	flag.Parse()

	scale := sim.Config{
		Workload:     *wl,
		WarmupInstr:  800_000,
		MeasureInstr: 1_200_000,
		Samples:      2,
	}

	fmt.Printf("%-12s %-7s %-8s %-9s %-10s %-10s\n",
		"mechanism", "IPC", "speedup", "coverage", "BTB MPKI", "L1-I MPKI")

	var base sim.Result
	for _, mech := range sim.Mechanisms() {
		cfg := scale
		cfg.Mechanism = mech
		res := sim.MustRun(cfg)
		if mech == sim.None {
			base = res
		}
		fmt.Printf("%-12s %-7.3f %-8.3f %-9.3f %-10.2f %-10.2f\n",
			mech, res.IPC(), res.Speedup(base), res.StallCoverage(base),
			res.BTBMPKI(), res.L1IMPKI())
	}
}
