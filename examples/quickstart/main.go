// Quickstart: simulate one server workload under the no-prefetch
// baseline and under Shotgun, and report the speedup — the smallest
// useful use of the library.
package main

import (
	"fmt"

	"shotgun/internal/sim"
)

func main() {
	base := sim.MustRun(sim.Config{
		Workload:  "DB2",
		Mechanism: sim.None,
		// Short run so the example finishes in seconds; the reported
		// experiments use longer windows (see cmd/shotgun-bench).
		WarmupInstr:  500_000,
		MeasureInstr: 1_000_000,
		Samples:      2,
	})
	shotgun := sim.MustRun(sim.Config{
		Workload:     "DB2",
		Mechanism:    sim.Shotgun,
		WarmupInstr:  500_000,
		MeasureInstr: 1_000_000,
		Samples:      2,
	})

	fmt.Printf("DB2 baseline:  IPC %.3f, BTB MPKI %.1f, L1-I MPKI %.1f\n",
		base.IPC(), base.BTBMPKI(), base.L1IMPKI())
	fmt.Printf("DB2 Shotgun:   IPC %.3f, BTB MPKI %.1f, L1-I MPKI %.1f\n",
		shotgun.IPC(), shotgun.BTBMPKI(), shotgun.L1IMPKI())
	fmt.Printf("speedup:       %.2fx\n", shotgun.Speedup(base))
	fmt.Printf("stall covered: %.0f%%\n", 100*shotgun.StallCoverage(base))
}
