// btb_pressure: explore how the branch working set of each workload
// pressures a conventional BTB (the Table 1 / Figure 4 story): dynamic
// coverage of the hottest K static branches, and the measured BTB MPKI
// across BTB sizes.
package main

import (
	"fmt"

	"shotgun/internal/sim"
	"shotgun/internal/workload"
)

func main() {
	fmt.Println("dynamic branch coverage of hottest K static branches (Figure 4 style):")
	fmt.Printf("%-10s %8s %8s %8s %10s\n", "workload", "K=1K", "K=2K", "K=8K", "uncond@1.5K")
	for _, name := range workload.Names() {
		prof := workload.MustGet(name)
		a := workload.Analyze(prof.NewWalker(), 300_000)
		fmt.Printf("%-10s %8.3f %8.3f %8.3f %10.3f\n", name,
			a.CoverageAt(1024, nil), a.CoverageAt(2048, nil), a.CoverageAt(8192, nil),
			a.CoverageAt(1536, workload.UncondFilter))
	}

	fmt.Println("\nmeasured BTB MPKI (no prefetching) across BTB sizes:")
	fmt.Printf("%-10s %8s %8s %8s\n", "workload", "1K", "2K", "4K")
	for _, name := range []string{"Apache", "Oracle", "DB2"} {
		var cells []float64
		for _, entries := range []int{1024, 2048, 4096} {
			res := sim.MustRun(sim.Config{
				Workload:     name,
				Mechanism:    sim.None,
				BTBEntries:   entries,
				WarmupInstr:  400_000,
				MeasureInstr: 600_000,
				Samples:      1,
			})
			cells = append(cells, res.BTBMPKI())
		}
		fmt.Printf("%-10s %8.1f %8.1f %8.1f\n", name, cells[0], cells[1], cells[2])
	}
}
