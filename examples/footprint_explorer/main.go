// footprint_explorer: study the spatial locality of code regions (the
// paper's Figure 3 insight) on a custom synthetic program, and show how
// well different footprint encodings would capture it.
package main

import (
	"flag"
	"fmt"
	"math"

	"shotgun/internal/footprint"
	"shotgun/internal/isa"
	"shotgun/internal/program"
	"shotgun/internal/workload"
)

func main() {
	funcs := flag.Int("funcs", 400, "number of application functions")
	fnBlocks := flag.Float64("fnblocks", 10, "median function size in basic blocks")
	blocks := flag.Int("blocks", 300_000, "trace length in basic blocks")
	flag.Parse()

	prog := program.MustGenerate(program.GenParams{
		NumAppFuncs:     *funcs,
		NumKernelFuncs:  *funcs / 8,
		FnBlocksLogMean: math.Log(*fnBlocks),
	}, 7)
	fmt.Printf("program: %d functions, %.0f KB code, %d static branches\n\n",
		len(prog.Funcs), float64(prog.CodeBytes())/1024, prog.StaticBranches())

	// Figure 3: where do region accesses land relative to the entry?
	a := workload.Analyze(workload.NewWalker(prog, 1), *blocks)
	cdf := a.RegionCDF()
	fmt.Println("cumulative access probability vs block distance from region entry:")
	for _, d := range []int{0, 1, 2, 3, 5, 8, 10, 16} {
		bar := int(cdf[d] * 50)
		fmt.Printf("  <=%2d  %5.1f%%  %s\n", d, 100*cdf[d], repeat('#', bar))
	}

	// How much of that locality does each encoding capture? Replay the
	// trace through recorders and count dropped (non-encodable) accesses.
	for _, layout := range []footprint.Layout{footprint.Layout8, footprint.Layout32} {
		rec := footprint.NewRecorder(layout)
		w := workload.NewWalker(prog, 1)
		var commits uint64
		var marked int
		for i := 0; i < *blocks; i++ {
			if c := rec.Observe(w.Next()); c != nil {
				commits++
				marked += c.Vector.PopCount()
			}
		}
		total := float64(rec.Dropped) + float64(marked)
		if total == 0 {
			total = 1
		}
		fmt.Printf("\n%d-bit footprint (%d before / %d after): %d regions, "+
			"%.2f blocks marked per region, %.1f%% of off-entry accesses beyond window",
			layout.Bits(), layout.Before, layout.After, commits,
			float64(marked)/float64(commits), 100*float64(rec.Dropped)/total)
	}
	fmt.Println()
}

func repeat(c byte, n int) string {
	b := make([]byte, n)
	for i := range b {
		b[i] = c
	}
	return string(b)
}

var _ = isa.BlockBytes // keep the isa dependency explicit for readers
