package main

import (
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// writeFile and devNull keep TestRunEnforcesFloors readable.
func writeFile(path, content string) error {
	return os.WriteFile(path, []byte(content), 0o644)
}

func devNull(t *testing.T) *os.File {
	t.Helper()
	f, err := os.OpenFile(os.DevNull, os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { f.Close() })
	return f
}

const sampleProfile = `mode: atomic
shotgun/internal/dispatch/coordinator.go:10.2,12.3 2 5
shotgun/internal/dispatch/coordinator.go:14.2,16.3 3 0
shotgun/internal/dispatch/worker.go:8.2,9.3 5 1
shotgun/internal/store/store.go:20.2,22.3 4 0
`

func TestCoverageByPackage(t *testing.T) {
	got, err := coverageByPackage(sampleProfile)
	if err != nil {
		t.Fatal(err)
	}
	// dispatch: (2+5)/(2+3+5) = 70%; store: 0/4 = 0%.
	if cov := got["shotgun/internal/dispatch"]; math.Abs(cov-70) > 1e-9 {
		t.Fatalf("dispatch coverage = %v, want 70", cov)
	}
	if cov := got["shotgun/internal/store"]; cov != 0 {
		t.Fatalf("store coverage = %v, want 0", cov)
	}
}

func TestCoverageByPackageRejectsGarbage(t *testing.T) {
	for _, bad := range []string{
		"no-separator-line",
		"file.go:1.2,3.4 too few",
		"file.go:1.2,3.4 x y z",
	} {
		if _, err := coverageByPackage("mode: set\n" + bad + "\n"); err == nil {
			t.Errorf("profile %q accepted", bad)
		}
	}
}

func TestRunEnforcesFloors(t *testing.T) {
	dir := t.TempDir()
	write := func(name, content string) string {
		t.Helper()
		p := filepath.Join(dir, name)
		if err := writeFile(p, content); err != nil {
			t.Fatal(err)
		}
		return p
	}
	profile := write("cover.out", sampleProfile)

	// Floors that hold: passes.
	ok := write("ok.json", `{"shotgun/internal/dispatch": 50}`)
	if err := run(profile, ok, devNull(t)); err != nil {
		t.Fatalf("holding floor failed: %v", err)
	}

	// A floor above measured coverage: fails with the numbers.
	bad := write("bad.json", `{"shotgun/internal/dispatch": 90}`)
	err := run(profile, bad, devNull(t))
	if err == nil || !strings.Contains(err.Error(), "70.0% < floor 90.0%") {
		t.Fatalf("regressed floor not reported: %v", err)
	}

	// A guarded package missing from the profile entirely: fails.
	missing := write("missing.json", `{"shotgun/internal/server": 10}`)
	err = run(profile, missing, devNull(t))
	if err == nil || !strings.Contains(err.Error(), "absent from profile") {
		t.Fatalf("missing package not reported: %v", err)
	}
}
