// Command coverfloor enforces per-package statement-coverage floors: it
// aggregates a `go test -coverprofile` profile by package and fails
// (exit 1) when any package named in the floors file regresses below
// its checked-in floor or is missing from the profile entirely. CI runs
// it after the coverage job so a PR that deletes tests — or adds a pile
// of untested code to a guarded package — fails the build with the
// exact numbers in the log.
//
// Usage:
//
//	go test -coverprofile=cover.out ./internal/...
//	go run ./tools/coverfloor -profile cover.out -floors tools/coverfloor/floors.json
//
// The floors file maps import paths to minimum coverage percentages:
//
//	{"shotgun/internal/dispatch": 75.0, "shotgun/internal/store": 80.0}
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
)

func main() {
	profile := flag.String("profile", "cover.out", "coverage profile from go test -coverprofile")
	floors := flag.String("floors", "tools/coverfloor/floors.json", "JSON map of import path -> minimum coverage %")
	flag.Parse()

	if err := run(*profile, *floors, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

func run(profilePath, floorsPath string, out *os.File) error {
	rawFloors, err := os.ReadFile(floorsPath)
	if err != nil {
		return fmt.Errorf("coverfloor: %w", err)
	}
	var want map[string]float64
	if err := json.Unmarshal(rawFloors, &want); err != nil {
		return fmt.Errorf("coverfloor: parse floors: %w", err)
	}

	raw, err := os.ReadFile(profilePath)
	if err != nil {
		return fmt.Errorf("coverfloor: %w", err)
	}
	got, err := coverageByPackage(string(raw))
	if err != nil {
		return fmt.Errorf("coverfloor: %w", err)
	}

	pkgs := make([]string, 0, len(want))
	for pkg := range want {
		pkgs = append(pkgs, pkg)
	}
	sort.Strings(pkgs)

	var failures []string
	for _, pkg := range pkgs {
		floor := want[pkg]
		cov, ok := got[pkg]
		switch {
		case !ok:
			failures = append(failures, fmt.Sprintf("%s: absent from profile (floor %.1f%%)", pkg, floor))
		case cov+1e-9 < floor:
			failures = append(failures, fmt.Sprintf("%s: %.1f%% < floor %.1f%%", pkg, cov, floor))
		default:
			fmt.Fprintf(out, "ok\t%s\t%.1f%% (floor %.1f%%)\n", pkg, cov, floor)
		}
	}
	if len(failures) > 0 {
		msg := "coverage regression:"
		for _, f := range failures {
			msg += "\n  " + f
		}
		return fmt.Errorf("%s", msg)
	}
	return nil
}
