package main

import (
	"fmt"
	"path"
	"strings"
)

// blockStats accumulates one package's statement counts.
type blockStats struct {
	total   int
	covered int
}

// coverageByPackage parses a go coverage profile ("mode:" header, then
// `file.go:L.C,L.C numStmts hitCount` lines) and returns statement
// coverage percentages keyed by import path. Duplicate blocks (the
// atomic/count modes re-emit blocks per test binary) are merged by
// summing counts, matching `go tool cover -func` totals closely enough
// for floor checks.
func coverageByPackage(profile string) (map[string]float64, error) {
	stats := make(map[string]*blockStats)
	for i, line := range strings.Split(profile, "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "mode:") {
			continue
		}
		file, rest, ok := strings.Cut(line, ":")
		if !ok {
			return nil, fmt.Errorf("line %d: no file separator in %q", i+1, line)
		}
		fields := strings.Fields(rest)
		if len(fields) != 3 {
			return nil, fmt.Errorf("line %d: want 'range numStmts hits', got %q", i+1, line)
		}
		var stmts, hits int
		if _, err := fmt.Sscanf(fields[1]+" "+fields[2], "%d %d", &stmts, &hits); err != nil {
			return nil, fmt.Errorf("line %d: %w", i+1, err)
		}
		pkg := path.Dir(file)
		s := stats[pkg]
		if s == nil {
			s = &blockStats{}
			stats[pkg] = s
		}
		s.total += stmts
		if hits > 0 {
			s.covered += stmts
		}
	}
	out := make(map[string]float64, len(stats))
	for pkg, s := range stats {
		if s.total == 0 {
			continue
		}
		out[pkg] = 100 * float64(s.covered) / float64(s.total)
	}
	return out, nil
}
