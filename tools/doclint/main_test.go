package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// write creates a file (and its parents) under root.
func write(t *testing.T, root, rel, content string) {
	t.Helper()
	path := filepath.Join(root, rel)
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
}

// validSpec is the smallest compilable sweep spec.
const validSpec = `{"version":1,"name":"ok","tables":[{"id":"t","title":"t",
	"region_cdf":{"workloads":["Oracle"],"distances":[0]}}]}`

func TestLintPackageDocs(t *testing.T) {
	root := t.TempDir()
	write(t, root, "good/good.go", "// Package good is documented.\npackage good\n")
	write(t, root, "bare/bare.go", "package bare\n")
	write(t, root, "twice/a.go", "// Package twice, once.\npackage twice\n")
	write(t, root, "twice/b.go", "// Package twice, again.\npackage twice\n")
	// Test files and testdata never need docs.
	write(t, root, "good/good_test.go", "package good\n")
	write(t, root, "good/testdata/ignored.go", "package ignored\n")

	problems := lintPackageDocs(root)
	if len(problems) != 2 {
		t.Fatalf("problems = %v, want undocumented bare/ and double-documented twice/", problems)
	}
	if !strings.Contains(problems[0], "bare") || !strings.Contains(problems[0], "no doc comment") {
		t.Errorf("missing bare finding: %v", problems)
	}
	if !strings.Contains(problems[1], "twice") || !strings.Contains(problems[1], "2 files") {
		t.Errorf("missing twice finding: %v", problems)
	}
}

func TestLintSpecs(t *testing.T) {
	root := t.TempDir()
	if probs := lintSpecs(root); len(probs) != 1 || !strings.Contains(probs[0], "no sweep specs") {
		t.Fatalf("empty specs dir should be flagged, got %v", probs)
	}
	write(t, root, "specs/ok.json", validSpec)
	write(t, root, "specs/broken.json", `{"version":1,"bogus":true}`)
	probs := lintSpecs(root)
	if len(probs) != 1 || !strings.Contains(probs[0], "broken.json") {
		t.Fatalf("problems = %v, want exactly the broken spec", probs)
	}
}

func TestLintLinks(t *testing.T) {
	root := t.TempDir()
	write(t, root, "docs/REAL.md", "# real\n")
	write(t, root, "README.md", strings.Join([]string{
		"[good](docs/REAL.md)",
		"[anchor](docs/REAL.md#section)",
		"[external](https://example.com/x.md)",
		"![badge](../../actions/workflows/ci.yml/badge.svg)",
		"[broken](docs/MISSING.md)",
	}, "\n"))
	write(t, root, "docs/GUIDE.md", "[up](../README.md)\n[gone](./nope.md)\n")

	probs := lintLinks(root)
	if len(probs) != 2 {
		t.Fatalf("problems = %v, want the two broken links only", probs)
	}
	if !strings.Contains(probs[0], "MISSING.md") || !strings.Contains(probs[1], "nope.md") {
		t.Fatalf("wrong findings: %v", probs)
	}
}

// TestLintRepo runs the real gate over the repository itself, so `go
// test ./...` fails on doc debt before CI does.
func TestLintRepo(t *testing.T) {
	if probs := lint(filepath.Join("..", "..")); len(probs) > 0 {
		t.Fatalf("repository doc lint failed:\n%s", strings.Join(probs, "\n"))
	}
}
