// Command doclint is the documentation gate behind the CI doc-lint
// job. It enforces three repo invariants that drift silently otherwise:
//
//  1. every Go package (including commands and tools) carries exactly
//     one package doc comment — zero means an undocumented contract,
//     two means godoc picks one arbitrarily;
//  2. every checked-in sweep spec under specs/ parses and compiles, so
//     a format change can never orphan the declarative catalog;
//  3. every relative link in README.md and docs/*.md points at a file
//     that exists (external URLs and paths escaping the repo, like
//     GitHub badge routes, are skipped — they are not filesystem
//     claims).
//
// Usage: doclint [-root dir]. Exit status 1 lists every violation.
package main

import (
	"flag"
	"fmt"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"

	"shotgun/internal/spec"
)

func main() {
	root := flag.String("root", ".", "repository root to lint")
	flag.Parse()
	problems := lint(*root)
	for _, p := range problems {
		fmt.Fprintln(os.Stderr, p)
	}
	if len(problems) > 0 {
		fmt.Fprintf(os.Stderr, "doclint: %d problem(s)\n", len(problems))
		os.Exit(1)
	}
	fmt.Println("doclint: ok")
}

// lint runs every check and returns the combined findings.
func lint(root string) []string {
	var problems []string
	problems = append(problems, lintPackageDocs(root)...)
	problems = append(problems, lintSpecs(root)...)
	problems = append(problems, lintLinks(root)...)
	return problems
}

// skipDirs are trees that hold no lintable packages.
var skipDirs = map[string]bool{".git": true, ".github": true, "testdata": true}

// lintPackageDocs walks every directory containing non-test Go files
// and requires exactly one package doc comment per package.
func lintPackageDocs(root string) []string {
	byDir := make(map[string][]string) // dir -> files carrying a package doc
	counted := make(map[string]int)    // dir -> non-test go files
	fset := token.NewFileSet()
	var problems []string
	err := filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			if skipDirs[d.Name()] {
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(path, ".go") || strings.HasSuffix(path, "_test.go") {
			return nil
		}
		dir := filepath.Dir(path)
		counted[dir]++
		f, err := parser.ParseFile(fset, path, nil, parser.PackageClauseOnly|parser.ParseComments)
		if err != nil {
			problems = append(problems, fmt.Sprintf("%s: parse: %v", path, err))
			return nil
		}
		if f.Doc != nil {
			byDir[dir] = append(byDir[dir], filepath.Base(path))
		}
		return nil
	})
	if err != nil {
		return append(problems, fmt.Sprintf("walk %s: %v", root, err))
	}
	dirs := make([]string, 0, len(counted))
	for dir := range counted {
		dirs = append(dirs, dir)
	}
	sort.Strings(dirs)
	for _, dir := range dirs {
		docs := byDir[dir]
		switch len(docs) {
		case 1:
		case 0:
			problems = append(problems, fmt.Sprintf("%s: package has no doc comment", dir))
		default:
			sort.Strings(docs)
			problems = append(problems, fmt.Sprintf(
				"%s: package doc comment in %d files (%s) — godoc picks one arbitrarily; keep exactly one",
				dir, len(docs), strings.Join(docs, ", ")))
		}
	}
	return problems
}

// lintSpecs compiles every checked-in sweep spec.
func lintSpecs(root string) []string {
	paths, err := filepath.Glob(filepath.Join(root, "specs", "*.json"))
	if err != nil {
		return []string{fmt.Sprintf("glob specs: %v", err)}
	}
	if len(paths) == 0 {
		return []string{fmt.Sprintf("%s: no sweep specs found (the declarative catalog is part of the repo contract)",
			filepath.Join(root, "specs"))}
	}
	var problems []string
	for _, p := range paths {
		if _, err := spec.CompileFile(p); err != nil {
			problems = append(problems, fmt.Sprintf("%v", err))
		}
	}
	return problems
}

// linkRE matches markdown link/image targets: [text](target).
var linkRE = regexp.MustCompile(`\]\(([^()\s]+)\)`)

// lintLinks checks that relative links in README.md and docs/*.md
// resolve to existing files.
func lintLinks(root string) []string {
	files, err := filepath.Glob(filepath.Join(root, "docs", "*.md"))
	if err != nil {
		return []string{fmt.Sprintf("glob docs: %v", err)}
	}
	if _, err := os.Stat(filepath.Join(root, "README.md")); err == nil {
		files = append([]string{filepath.Join(root, "README.md")}, files...)
	}
	absRoot, err := filepath.Abs(root)
	if err != nil {
		return []string{fmt.Sprintf("abs %s: %v", root, err)}
	}
	var problems []string
	for _, file := range files {
		raw, err := os.ReadFile(file)
		if err != nil {
			problems = append(problems, fmt.Sprintf("%s: %v", file, err))
			continue
		}
		for _, m := range linkRE.FindAllStringSubmatch(string(raw), -1) {
			target := m[1]
			if strings.Contains(target, "://") || strings.HasPrefix(target, "mailto:") {
				continue // external URL
			}
			if i := strings.IndexByte(target, '#'); i >= 0 {
				target = target[:i]
			}
			if target == "" {
				continue // pure anchor
			}
			resolved := filepath.Join(filepath.Dir(file), target)
			abs, err := filepath.Abs(resolved)
			if err != nil || !strings.HasPrefix(abs, absRoot+string(filepath.Separator)) {
				continue // escapes the repo (e.g. GitHub badge routes); not a filesystem claim
			}
			if _, err := os.Stat(resolved); err != nil {
				problems = append(problems, fmt.Sprintf("%s: broken relative link %q", file, m[1]))
			}
		}
	}
	return problems
}
